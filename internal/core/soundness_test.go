package core

import (
	"fmt"
	"math/rand"
	"testing"

	"wolf/internal/explore"
	"wolf/sim"
)

// randomProgram generates a small branch-free multithreaded program:
// main spawns 2-3 workers (sometimes joining one before spawning the
// next, which creates prunable non-overlap), and each worker performs a
// few nested lock-pair sections over a small lock pool. Branch-free
// programs make the explorer's verdict a sound ground truth for the
// pipeline's per-trace claims.
func randomProgram(progSeed int64) sim.Factory {
	return func() (sim.Program, sim.Options) {
		rng := rand.New(rand.NewSource(progSeed))
		nLocks := 2 + rng.Intn(2)   // 2-3 locks
		nThreads := 2 + rng.Intn(2) // 2-3 workers
		joinEarly := rng.Intn(3) == 0

		locks := make([]*sim.Lock, nLocks)
		opts := sim.Options{Setup: func(w *sim.World) {
			for i := range locks {
				locks[i] = w.NewLock(fmt.Sprintf("L%d", i))
			}
		}}

		type section struct{ outer, inner int }
		bodies := make([][]section, nThreads)
		for ti := range bodies {
			n := 1 + rng.Intn(2) // 1-2 sections
			for s := 0; s < n; s++ {
				outer := rng.Intn(nLocks)
				inner := rng.Intn(nLocks)
				for inner == outer {
					inner = rng.Intn(nLocks)
				}
				bodies[ti] = append(bodies[ti], section{outer, inner})
			}
		}

		worker := func(ti int) sim.Program {
			return func(u *sim.Thread) {
				for si, sec := range bodies[ti] {
					so := fmt.Sprintf("t%d.%d.o", ti, si)
					si2 := fmt.Sprintf("t%d.%d.i", ti, si)
					u.Lock(locks[sec.outer], so)
					u.Lock(locks[sec.inner], si2)
					u.Unlock(locks[sec.inner], si2+"u")
					u.Unlock(locks[sec.outer], so+"u")
				}
			}
		}
		prog := func(th *sim.Thread) {
			var hs []*sim.Thread
			for ti := 0; ti < nThreads; ti++ {
				h := th.Go("w", worker(ti), fmt.Sprintf("spawn%d", ti))
				if joinEarly && ti == 0 {
					th.Join(h, "earlyjoin")
				} else {
					hs = append(hs, h)
				}
			}
			for i, h := range hs {
				th.Join(h, fmt.Sprintf("join%d", i))
			}
		}
		return prog, opts
	}
}

// TestPipelineSoundnessAgainstExplorer machine-checks the paper's
// correctness claims on dozens of random programs:
//
//   - a cycle classified false (Pruner or Generator) must be infeasible
//     in EVERY schedule (exhaustively verified);
//   - a confirmed cycle must be feasible (trivially, it was reproduced —
//     but the explorer must agree, validating the hit criterion).
func TestPipelineSoundnessAgainstExplorer(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration is slow")
	}
	checkedFalse, checkedConfirmed := 0, 0
	for progSeed := int64(0); progSeed < 24; progSeed++ {
		f := randomProgram(progSeed)
		rep := Analyze(f, Config{DetectSeeds: []int64{1, 2, 3}, ReplayAttempts: 3})
		if len(rep.Cycles) == 0 {
			continue
		}
		ground, err := explore.Explore(f, explore.Limits{MaxRuns: 15_000})
		if err != nil {
			t.Fatalf("prog %d: %v", progSeed, err)
		}
		if ground.Truncated {
			continue // inconclusive ground truth; skip
		}
		for _, cr := range rep.Cycles {
			feasible := ground.CycleFeasible(cr.Cycle)
			switch {
			case cr.Class.IsFalse():
				checkedFalse++
				if feasible {
					t.Errorf("prog %d: cycle %v classified %v but is feasible (UNSOUND)",
						progSeed, cr.Cycle, cr.Class)
				}
			case cr.Class == Confirmed:
				checkedConfirmed++
				if !feasible {
					t.Errorf("prog %d: cycle %v confirmed but explorer finds it infeasible",
						progSeed, cr.Cycle)
				}
			}
		}
	}
	t.Logf("checked %d false verdicts and %d confirmations against ground truth",
		checkedFalse, checkedConfirmed)
	if checkedFalse == 0 {
		t.Error("no false verdicts were exercised; strengthen the generator")
	}
	if checkedConfirmed == 0 {
		t.Error("no confirmations were exercised; strengthen the generator")
	}
}

// TestReplayEffectiveness: across random programs with feasible cycles,
// the Gs-driven replay confirms a healthy majority — mirroring the
// paper's 68% confirmation rate of unpruned defects.
func TestReplayEffectiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration is slow")
	}
	feasibleTotal, confirmed := 0, 0
	for progSeed := int64(100); progSeed < 124; progSeed++ {
		f := randomProgram(progSeed)
		rep := Analyze(f, Config{DetectSeeds: []int64{1, 2, 3}, ReplayAttempts: 5})
		if len(rep.Cycles) == 0 {
			continue
		}
		ground, err := explore.Explore(f, explore.Limits{MaxRuns: 15_000})
		if err != nil || ground.Truncated {
			continue
		}
		for _, cr := range rep.Cycles {
			if ground.CycleFeasible(cr.Cycle) {
				feasibleTotal++
				if cr.Class == Confirmed {
					confirmed++
				}
			}
		}
	}
	if feasibleTotal == 0 {
		t.Skip("no feasible cycles generated")
	}
	rate := float64(confirmed) / float64(feasibleTotal)
	t.Logf("confirmed %d/%d feasible cycles (%.0f%%)", confirmed, feasibleTotal, rate*100)
	if rate < 0.6 {
		t.Errorf("replay confirmed only %.0f%% of feasible cycles, want >= 60%%", rate*100)
	}
}
