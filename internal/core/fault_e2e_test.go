package core

// End-to-end acceptance for the fault-injection harness: the pipeline
// must keep confirming known deadlocks while deterministic scheduling
// perturbations (preemptions, stalls, spurious wakeups, delayed grants)
// are injected into every replay run, across several rates and seeds.

import (
	"fmt"
	"testing"

	"wolf/internal/replay"
	"wolf/sim"
)

// TestAnalyzeUnderFaultInjection: the Figure 4 deadlock (θ2, "19+33")
// is confirmed end to end at 2 injection rates × 3 injection seeds, the
// report carries the fault accounting, and every confirmed defect says
// which replay method confirmed it.
func TestAnalyzeUnderFaultInjection(t *testing.T) {
	seed := findDetectionSeed(t, fig4Factory)
	totalFaults := 0
	for _, rate := range []float64{0.05, 0.2} {
		for fseed := int64(1); fseed <= 3; fseed++ {
			t.Run(fmt.Sprintf("rate=%g/seed=%d", rate, fseed), func(t *testing.T) {
				rep := Analyze(fig4Factory, Config{
					DetectSeeds: []int64{seed},
					Faults:      sim.FaultConfig{Rate: rate, Seed: fseed},
				})
				if got := classOf(t, rep, "19+33"); got != Confirmed {
					t.Fatalf("θ2 class = %v under faults rate=%g seed=%d, want confirmed",
						got, rate, fseed)
				}
				for _, cr := range rep.Cycles {
					totalFaults += cr.Faults.Total()
				}
				for _, d := range rep.Defects {
					if d.Class == Confirmed && d.Method == replay.MethodNone {
						t.Fatalf("confirmed defect %s has no replay method", d.Signature)
					}
				}
			})
		}
	}
	if totalFaults == 0 {
		t.Fatal("no faults injected across any configuration")
	}
}

// TestFigure2UnderFaultInjection: a second workload — Figure 2's three
// defects — keeps its verdicts under injection, so robustness is not a
// Figure 4 special case.
func TestFigure2UnderFaultInjection(t *testing.T) {
	seed := findDetectionSeed(t, figure2Factory)
	rep := Analyze(figure2Factory, Config{
		DetectSeeds: []int64{seed},
		Faults:      sim.FaultConfig{Rate: 0.1, Seed: 7},
	})
	if got := classOf(t, rep, "522+522"); got != FalseByGenerator {
		t.Errorf("θ4 class = %v, want false(generator)", got)
	}
	if got := classOf(t, rep, "509+509"); got != Confirmed {
		t.Errorf("θ1 class = %v, want confirmed", got)
	}
	if got := classOf(t, rep, "509+522"); got != Confirmed {
		t.Errorf("θ2/θ3 class = %v, want confirmed", got)
	}
}
