package core

import (
	"bytes"
	"testing"

	"wolf/internal/trace"
)

// TestOfflineAnalysisRoundTrip: record a trace, serialize it, reload it,
// and run the offline pipeline — verdicts match the online pipeline up
// to replay (confirmed defects appear as unknown offline).
func TestOfflineAnalysisRoundTrip(t *testing.T) {
	seed := findDetectionSeed(t, figure2Factory)
	tr := Record(figure2Factory, seed, 0)
	if len(tr.Tuples) == 0 {
		t.Fatal("empty trace")
	}

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	offline := AnalyzeTrace(loaded, Config{})
	online := Analyze(figure2Factory, Config{DetectSeeds: []int64{seed}})
	if len(offline.Defects) != len(online.Defects) {
		t.Fatalf("offline defects = %d, online = %d", len(offline.Defects), len(online.Defects))
	}
	for _, od := range offline.Defects {
		var match *DefectReport
		for _, nd := range online.Defects {
			if nd.Signature == od.Signature {
				match = nd
			}
		}
		if match == nil {
			t.Fatalf("offline defect %s not found online", od.Signature)
		}
		switch match.Class {
		case Confirmed:
			if od.Class != Unknown {
				t.Errorf("%s: offline class %v, want unknown (no replay offline)", od.Signature, od.Class)
			}
		default:
			if od.Class != match.Class {
				t.Errorf("%s: offline class %v, online %v", od.Signature, od.Class, match.Class)
			}
		}
	}
}

// TestOfflineWithoutClocks: a trace without vector clocks (base
// recorder) skips pruning but still runs the Generator.
func TestOfflineWithoutClocks(t *testing.T) {
	seed := findDetectionSeed(t, fig4Factory)
	tr := Record(fig4Factory, seed, 0)
	tr.Clocks = nil
	rep := AnalyzeTrace(tr, Config{})
	pr, _, _, _ := rep.CountDefects()
	if pr != 0 {
		t.Fatalf("pruner ran without clocks: %d", pr)
	}
	if len(rep.Cycles) != 2 {
		t.Fatalf("cycles = %d, want 2", len(rep.Cycles))
	}
}
