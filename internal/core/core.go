// Package core wires WOLF's components into the end-to-end pipeline of
// the paper's Figure 3: instrumented execution → extended dynamic cycle
// detection → Pruner → Generator → Replayer, plus the DeadlockFuzzer
// baseline pipeline used for comparison.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wolf/internal/detect"
	"wolf/internal/fuzzer"
	"wolf/internal/obs"
	"wolf/internal/pruner"
	"wolf/internal/replay"
	"wolf/internal/sdg"
	"wolf/internal/trace"
	"wolf/internal/vclock"
	"wolf/sim"
)

// Classification is the pipeline's verdict on a cycle or defect.
type Classification int

const (
	// Unknown: not refuted, not reproduced — left for manual analysis.
	Unknown Classification = iota
	// FalseByPruner: refuted by the vector-clock Pruner (Algorithm 2).
	FalseByPruner
	// FalseByGenerator: refuted by a cyclic synchronization dependency
	// graph (Algorithm 3).
	FalseByGenerator
	// Confirmed: automatically reproduced by the Replayer (or the
	// DeadlockFuzzer baseline) — a true positive.
	Confirmed
	// FalseByData: refuted by the value-flow extension — Gs becomes
	// cyclic only once type-V (data dependency) edges are added. Only
	// produced when Config.DataDependency is set; the paper lists this
	// analysis as future work (Section 4.4).
	FalseByData
)

// String names the classification.
func (c Classification) String() string {
	switch c {
	case FalseByPruner:
		return "false(pruner)"
	case FalseByGenerator:
		return "false(generator)"
	case Confirmed:
		return "confirmed"
	case FalseByData:
		return "false(data)"
	default:
		return "unknown"
	}
}

// IsFalse reports whether the classification is either false-positive
// verdict.
func (c Classification) IsFalse() bool {
	return c == FalseByPruner || c == FalseByGenerator || c == FalseByData
}

// Config controls an analysis.
type Config struct {
	// DetectSeeds are the schedule seeds of the recorded detection runs;
	// {1} when empty. Each seed contributes one trace.
	DetectSeeds []int64
	// MaxCycleLen bounds detected cycle length (detect.DefaultMaxLength
	// when zero).
	MaxCycleLen int
	// ReplayAttempts is the per-cycle reproduction budget
	// (replay.DefaultAttempts when zero).
	ReplayAttempts int
	// ReplaySeed seeds reproduction attempts.
	ReplaySeed int64
	// MaxSteps bounds each run (sim.DefaultMaxSteps when zero).
	MaxSteps int
	// DisablePruner skips Algorithm 2 (ablation).
	DisablePruner bool
	// DisableGenerator skips Algorithm 3's cycle check (ablation); Gs is
	// still built to drive the Replayer.
	DisableGenerator bool
	// EdgeKinds restricts Gs edges used for replay (sdg.AllKinds when
	// zero; ablation).
	EdgeKinds sdg.Kind
	// NoReduce disables the MagicFuzzer-style tuple reduction before
	// cycle detection (ablation).
	NoReduce bool
	// DataDependency enables the value-flow extension: shared-variable
	// accesses recorded through sim.Var add type-V edges to Gs, letting
	// the Generator refute deadlocks that the recorded control flow
	// makes impossible (the paper's Section 4.4 future work).
	DataDependency bool
	// Faults injects deterministic scheduling perturbations into every
	// replay attempt (the robustness harness; the zero value injects
	// nothing).
	Faults sim.FaultConfig
	// FallbackAttempts is the PCT-randomized confirmation budget used
	// when every steered replay diverges (replay.DefaultFallbackAttempts
	// when zero; negative disables the fallback pass).
	FallbackAttempts int
	// Parallelism bounds the worker pool the Generator phase fans
	// cycles out on (zero means runtime.GOMAXPROCS(0), capped at
	// MaxParallelism). Every worker writes only its own cycle's report
	// slot, so the report is byte-identical at any setting; 1 forces the
	// sequential path.
	Parallelism int
}

// MaxParallelism caps Config.Parallelism: beyond this the per-cycle
// work units are too coarse for extra workers to help, and an
// accidental huge flag value must not spawn thousands of goroutines.
const MaxParallelism = 64

// EffectiveParallelism resolves Config.Parallelism: zero or negative
// defaults to runtime.GOMAXPROCS(0), and the result never exceeds
// MaxParallelism. wolfd reports this resolved value as the
// wolfd_analysis_parallelism gauge.
func (cfg *Config) EffectiveParallelism() int {
	p := cfg.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > MaxParallelism {
		p = MaxParallelism
	}
	return p
}

func (cfg *Config) detectSeeds() []int64 {
	if len(cfg.DetectSeeds) == 0 {
		return []int64{1}
	}
	return cfg.DetectSeeds
}

func (cfg *Config) edgeKinds() sdg.Kind {
	kinds := cfg.EdgeKinds
	if kinds == 0 {
		kinds = sdg.AllKinds
	}
	if cfg.DataDependency {
		kinds |= sdg.V
	}
	return kinds
}

// CycleReport is the pipeline outcome for one detected cycle.
type CycleReport struct {
	// Cycle is the detected potential deadlock.
	Cycle *detect.Cycle
	// Trace is the recorded execution the cycle was detected on.
	Trace *trace.Trace
	// Class is the verdict.
	Class Classification
	// PruneReason explains a FalseByPruner verdict.
	PruneReason *pruner.Explain
	// Gs is the synchronization dependency graph (nil when pruned).
	Gs *sdg.Graph
	// GsSize is the paper's Vs statistic for this cycle.
	GsSize int
	// ReplayAttempts counts steered reproduction runs performed.
	ReplayAttempts int
	// ReplayMethod says which pass confirmed the cycle: "steering"
	// (precise Gs-driven replay), "fallback" (the PCT-randomized
	// confirmation pass), or empty when not confirmed.
	ReplayMethod replay.Method
	// FallbackAttempts counts PCT-randomized confirmation runs performed.
	FallbackAttempts int
	// Divergence histograms the failed steered attempts by reason;
	// non-empty for every cycle that reached the Replayer without being
	// reproduced.
	Divergence replay.Divergence
	// Faults aggregates the scheduling perturbations injected across this
	// cycle's replay attempts (zero when injection is disabled).
	Faults sim.FaultStats
}

// DefectReport aggregates the cycles sharing one source-location
// signature (the paper's defect counting, Section 4.3).
type DefectReport struct {
	// Signature is the canonical sorted site list.
	Signature string
	// Cycles are the per-cycle reports.
	Cycles []*CycleReport
	// Class is the defect verdict: Confirmed if any cycle reproduced,
	// false if every cycle was refuted, Unknown otherwise.
	Class Classification
	// Method says which replay pass confirmed the defect: steering,
	// fallback, or empty when not Confirmed.
	Method replay.Method
	// Divergence aggregates the divergence histograms of the defect's
	// unreproduced cycles — the explanation an Unknown verdict carries.
	Divergence replay.Divergence
}

// classify derives the defect verdict from its cycles.
func (d *DefectReport) classify() {
	anyConfirmed, anyUnknown, anyGen, anyData := false, false, false, false
	for _, cr := range d.Cycles {
		switch cr.Class {
		case Confirmed:
			anyConfirmed = true
			// Steering beats fallback when different cycles of the defect
			// confirmed through different passes.
			if d.Method == replay.MethodNone || cr.ReplayMethod == replay.MethodSteering {
				d.Method = cr.ReplayMethod
			}
		case Unknown:
			anyUnknown = true
			if len(cr.Divergence) > 0 {
				if d.Divergence == nil {
					d.Divergence = make(replay.Divergence)
				}
				d.Divergence.Merge(cr.Divergence)
			}
		case FalseByGenerator:
			anyGen = true
		case FalseByData:
			anyData = true
		}
	}
	switch {
	case anyConfirmed:
		d.Class = Confirmed
	case anyUnknown:
		d.Class = Unknown
	case anyGen:
		d.Class = FalseByGenerator
	case anyData:
		d.Class = FalseByData
	default:
		d.Class = FalseByPruner
	}
}

// Timings records wall-clock durations of the pipeline phases. It is a
// derived view: Analyze aggregates the obs phase spans ("record",
// "cycle-detect", "prune", "generate", "replay") recorded during the
// run, so the same measurements feed the report, the wolfd histograms,
// and timeline exports. Only Uninstrumented is measured separately (it
// is a baseline, not a pipeline phase).
type Timings struct {
	// Uninstrumented is the bare program run time (same seeds, no
	// listeners; best of several repetitions), the baseline for the
	// paper's slowdown column.
	Uninstrumented time.Duration
	// Instrumented is the recorded execution time (listeners attached),
	// excluding post-mortem analysis.
	Instrumented time.Duration
	// CycleDetect covers the post-mortem lock-graph cycle search.
	CycleDetect time.Duration
	// Prune covers Algorithm 2.
	Prune time.Duration
	// Generate covers Algorithm 3.
	Generate time.Duration
	// Replay covers all reproduction runs.
	Replay time.Duration
}

// Detect is the total detection time: instrumented execution plus the
// cycle search.
func (t Timings) Detect() time.Duration { return t.Instrumented + t.CycleDetect }

// DetectionSlowdown is the instrumented execution time relative to the
// uninstrumented run (Table 1's Slowdown column: the runtime cost of
// recording; cycle search, pruning and generation happen after exit).
func (t Timings) DetectionSlowdown() float64 {
	if t.Uninstrumented <= 0 {
		return 0
	}
	return float64(t.Instrumented) / float64(t.Uninstrumented)
}

// TimingsFromRecorder derives phase timings from the spans recorded
// after mark (a position obtained from rec.Mark before the run).
// Uninstrumented is left zero: the baseline is not a pipeline phase.
func TimingsFromRecorder(rec *obs.Recorder, mark int) Timings {
	return Timings{
		Instrumented: rec.SumFrom(mark, "record"),
		CycleDetect:  rec.SumFrom(mark, "cycle-detect"),
		Prune:        rec.SumFrom(mark, "prune"),
		Generate:     rec.SumFrom(mark, "generate"),
		Replay:       rec.SumFrom(mark, "replay"),
	}
}

// Report is the result of analyzing one workload.
type Report struct {
	// Tool is "wolf" or "deadlockfuzzer".
	Tool string
	// Cycles holds one report per detected cycle (deduplicated across
	// detection seeds).
	Cycles []*CycleReport
	// Defects groups cycles by signature.
	Defects []*DefectReport
	// Timings are the phase durations.
	Timings Timings
}

// CountCycles tallies cycle verdicts: false positives (pruner,
// generator), confirmed, unknown.
func (r *Report) CountCycles() (pr, gen, confirmed, unknown int) {
	for _, cr := range r.Cycles {
		switch cr.Class {
		case FalseByPruner:
			pr++
		case FalseByGenerator, FalseByData:
			gen++
		case Confirmed:
			confirmed++
		default:
			unknown++
		}
	}
	return
}

// CountDefects tallies defect verdicts.
func (r *Report) CountDefects() (pr, gen, confirmed, unknown int) {
	for _, d := range r.Defects {
		switch d.Class {
		case FalseByPruner:
			pr++
		case FalseByGenerator, FalseByData:
			gen++
		case Confirmed:
			confirmed++
		default:
			unknown++
		}
	}
	return
}

// AvgStackLen is the paper's SL statistic averaged over all cycles.
func (r *Report) AvgStackLen() float64 {
	if len(r.Cycles) == 0 {
		return 0
	}
	sum := 0.0
	for _, cr := range r.Cycles {
		sum += cr.Cycle.AvgStackDepth()
	}
	return sum / float64(len(r.Cycles))
}

// AvgGsSize is the paper's Vs statistic averaged over unpruned cycles.
func (r *Report) AvgGsSize() float64 {
	n, sum := 0, 0
	for _, cr := range r.Cycles {
		if cr.GsSize > 0 {
			n++
			sum += cr.GsSize
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var sb strings.Builder
	byClass := make(map[Classification]int)
	for _, d := range r.Defects {
		byClass[d.Class]++
	}
	fmt.Fprintf(&sb, "[%s] defects: %d (false: %d pruner + %d generator + %d data, confirmed: %d, unknown: %d)\n",
		r.Tool, len(r.Defects), byClass[FalseByPruner], byClass[FalseByGenerator],
		byClass[FalseByData], byClass[Confirmed], byClass[Unknown])
	for _, d := range r.Defects {
		fmt.Fprintf(&sb, "  %-14s %s (%d cycles)", d.Class, d.Signature, len(d.Cycles))
		switch {
		case d.Class == Confirmed && d.Method != replay.MethodNone:
			fmt.Fprintf(&sb, " via %s", d.Method)
		case d.Class == Unknown && len(d.Divergence) > 0:
			fmt.Fprintf(&sb, " divergence[%s]", d.Divergence)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// cycleKey identifies a cycle across detection seeds for deduplication:
// the multiset of stable acquisition keys plus held contexts.
func cycleKey(c *detect.Cycle) string {
	parts := make([]string, 0, len(c.Tuples))
	for _, tp := range c.Tuples {
		held := make([]string, 0, len(tp.Held))
		for _, h := range tp.Held {
			held = append(held, h.Key.String())
		}
		sort.Strings(held)
		parts = append(parts, tp.Key.String()+"<"+strings.Join(held, ",")+">")
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// record runs one instrumented execution and returns its trace plus the
// execution's wall time.
func record(f sim.Factory, seed int64, maxSteps int, timestamps bool) (*trace.Trace, time.Duration) {
	prog, opts := f()
	var vt *vclock.Tracker
	if timestamps {
		vt = vclock.NewTracker()
		opts.Listeners = append(opts.Listeners, vt)
	}
	rec := trace.NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, rec)
	if maxSteps > 0 {
		opts.MaxSteps = maxSteps
	}
	start := time.Now()
	sim.Run(prog, sim.NewRandomStrategy(seed), opts)
	dur := time.Since(start)
	return rec.Finish(seed), dur
}

// detectAll runs detection over every seed and deduplicates cycles.
// Each seed emits a "record" span (pre-measured, so the instrumented
// time excludes trace finalization, matching the paper's slowdown
// statistic) and a "cycle-detect" span around the lock-graph search.
func detectAll(ctx context.Context, f sim.Factory, cfg *Config, timestamps bool) []*CycleReport {
	rec := obs.FromContext(ctx)
	seen := make(map[string]bool)
	var out []*CycleReport
	for _, seed := range cfg.detectSeeds() {
		tr, runDur := record(f, seed, cfg.MaxSteps, timestamps)
		if rec != nil {
			rec.Observe("record", runDur,
				obs.Attr{Key: "seed", Value: seed},
				obs.Attr{Key: "steps", Value: int64(tr.Steps)},
				obs.Attr{Key: "tuples", Value: int64(len(tr.Tuples))})
		}
		_, sp := obs.Start(ctx, "cycle-detect")
		cycles := detect.CyclesCtx(ctx, tr, detect.Config{MaxLength: cfg.MaxCycleLen, NoReduce: cfg.NoReduce})
		if sp != nil {
			sp.Add("cycles", int64(len(cycles)))
			sp.End()
		}
		for _, c := range cycles {
			key := cycleKey(c)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, &CycleReport{Cycle: c, Trace: tr})
		}
	}
	return out
}

// baseline measures the best-of-3 uninstrumented run time over the
// detection seeds; the minimum filters scheduler and allocator noise on
// these microsecond-scale runs. One "baseline" span covers the whole
// measurement (all repetitions), while the returned duration is the
// minimum of a single pass.
func baseline(ctx context.Context, f sim.Factory, cfg *Config) time.Duration {
	_, sp := obs.Start(ctx, "baseline")
	best := time.Duration(0)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		for _, seed := range cfg.detectSeeds() {
			prog, opts := f()
			if cfg.MaxSteps > 0 {
				opts.MaxSteps = cfg.MaxSteps
			}
			sim.Run(prog, sim.NewRandomStrategy(seed), opts)
		}
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	sp.End()
	return best
}

// pruneCycles applies the Pruner (Algorithm 2) to every cycle in one
// batched PruneCtx call per recorded trace — the clocks a cycle is
// checked against belong to the trace it was detected on, and online
// detection records one trace per seed. Batching keeps the span stream
// at one "pruner.prune" span with aggregate counts per trace instead of
// one cycles=1 span per cycle, which used to skew span counts and
// histogram samples. Traces recorded without clocks are skipped.
func pruneCycles(ctx context.Context, cycles []*CycleReport) {
	byTrace := make(map[*trace.Trace][]*CycleReport)
	var order []*trace.Trace // deterministic span emission order
	for _, cr := range cycles {
		if _, ok := byTrace[cr.Trace]; !ok {
			order = append(order, cr.Trace)
		}
		byTrace[cr.Trace] = append(byTrace[cr.Trace], cr)
	}
	for _, tr := range order {
		if ctx.Err() != nil || tr.Clocks == nil {
			continue
		}
		group := byTrace[tr]
		cs := make([]*detect.Cycle, len(group))
		for i, cr := range group {
			cs[i] = cr.Cycle
		}
		res := pruner.PruneCtx(ctx, cs, tr.Clocks)
		for i, cr := range group {
			if res.Verdicts[i] == pruner.False {
				cr.Class = FalseByPruner
				cr.PruneReason = res.Reasons[i]
			}
		}
	}
}

// generateCycles runs the Generator (Algorithm 3) over the cycles that
// survived pruning, fanning out across a worker pool bounded by
// cfg.EffectiveParallelism(). Each worker writes only the fields of its
// own *CycleReport, the recorded traces (and their lazily built shared
// index) are immutable once recording ends, and obs spans record into
// the context's mutex-protected recorder — so the fan-out is race-free
// and the report is independent of worker scheduling: results land in
// the report in original cycle order and every field is a pure function
// of (cycle, trace, cfg). Cancellation stops workers between cycles;
// cycles not reached keep their zero (Unknown) class.
func generateCycles(ctx context.Context, cycles []*CycleReport, cfg *Config) {
	gen := func(cr *CycleReport) {
		if cr.Class == FalseByPruner {
			return
		}
		cr.Gs = sdg.BuildKindsCtx(ctx, cr.Cycle, cr.Trace, cfg.edgeKinds())
		cr.GsSize = cr.Gs.Size()
		if !cfg.DisableGenerator && cr.Gs.Cyclic() {
			cr.Class = FalseByGenerator
			if cfg.DataDependency {
				// Attribute the refutation: if the graph is acyclic
				// without the V edges, only the data dependency proves
				// infeasibility.
				base := sdg.BuildKindsCtx(ctx, cr.Cycle, cr.Trace, cfg.edgeKinds()&^sdg.V)
				if !base.Cyclic() {
					cr.Class = FalseByData
				}
			}
		}
	}
	workers := cfg.EffectiveParallelism()
	if workers > len(cycles) {
		workers = len(cycles)
	}
	if workers <= 1 {
		for _, cr := range cycles {
			if ctx.Err() != nil {
				return
			}
			gen(cr)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cycles) || ctx.Err() != nil {
					return
				}
				gen(cycles[i])
			}
		}()
	}
	wg.Wait()
}

// Analyze runs the full WOLF pipeline on the workload built by f.
func Analyze(f sim.Factory, cfg Config) *Report {
	return AnalyzeCtx(context.Background(), f, cfg)
}

// AnalyzeCtx is Analyze with observability: pipeline phases emit spans
// on the context's obs.Recorder (one is created and attached when the
// context carries none), and the report's Timings are derived from
// those spans. Callers that pass their own recorder — the wolfd worker
// pool feeding histograms, the CLI exporting a timeline — see exactly
// the measurements the report is built from.
func AnalyzeCtx(ctx context.Context, f sim.Factory, cfg Config) *Report {
	rec := obs.FromContext(ctx)
	if rec == nil {
		rec = obs.NewRecorder()
		ctx = obs.WithRecorder(ctx, rec)
	}
	mark := rec.Mark()
	rep := &Report{Tool: "wolf"}

	// Baseline run time for the slowdown statistic.
	uninstrumented := baseline(ctx, f, &cfg)

	// Extended dynamic cycle detection (Algorithm 1 + cycle detection).
	rep.Cycles = detectAll(ctx, f, &cfg, true)

	// Pruner (Algorithm 2), batched per recorded trace.
	_, sp := obs.Start(ctx, "prune")
	if !cfg.DisablePruner {
		pruneCycles(ctx, rep.Cycles)
	}
	sp.End()

	// Generator (Algorithm 3, optionally with the value-flow extension),
	// fanned out across the configured worker pool.
	_, sp = obs.Start(ctx, "generate")
	generateCycles(ctx, rep.Cycles, &cfg)
	sp.End()

	// Replayer (Algorithm 4).
	_, sp = obs.Start(ctx, "replay")
	for _, cr := range rep.Cycles {
		if cr.Class != Unknown {
			continue
		}
		res := replay.ReproduceCtx(ctx, f, cr.Gs, cr.Cycle, replay.Config{
			Attempts:         cfg.ReplayAttempts,
			BaseSeed:         cfg.ReplaySeed,
			MaxSteps:         cfg.MaxSteps,
			Faults:           cfg.Faults,
			FallbackAttempts: cfg.FallbackAttempts,
		})
		cr.ReplayAttempts = res.Attempts
		cr.ReplayMethod = res.Method
		cr.FallbackAttempts = res.FallbackAttempts
		cr.Divergence = res.Divergence
		cr.Faults = res.Faults
		if res.Reproduced {
			cr.Class = Confirmed
		}
	}
	sp.End()

	rep.Timings = TimingsFromRecorder(rec, mark)
	rep.Timings.Uninstrumented = uninstrumented
	rep.group()
	return rep
}

// AnalyzeDF runs the DeadlockFuzzer baseline pipeline: iGoodLock
// detection (no timestamps), no pruning, abstraction-based randomized
// reproduction.
func AnalyzeDF(f sim.Factory, cfg Config) *Report {
	return AnalyzeDFCtx(context.Background(), f, cfg)
}

// AnalyzeDFCtx is AnalyzeDF with observability; see AnalyzeCtx.
func AnalyzeDFCtx(ctx context.Context, f sim.Factory, cfg Config) *Report {
	rec := obs.FromContext(ctx)
	if rec == nil {
		rec = obs.NewRecorder()
		ctx = obs.WithRecorder(ctx, rec)
	}
	mark := rec.Mark()
	rep := &Report{Tool: "deadlockfuzzer"}

	uninstrumented := baseline(ctx, f, &cfg)
	rep.Cycles = detectAll(ctx, f, &cfg, false)

	_, sp := obs.Start(ctx, "replay")
	for _, cr := range rep.Cycles {
		res := fuzzer.Reproduce(f, cr.Cycle, fuzzer.Config{
			Attempts: cfg.ReplayAttempts,
			BaseSeed: cfg.ReplaySeed,
			MaxSteps: cfg.MaxSteps,
		})
		cr.ReplayAttempts = res.Attempts
		if res.Reproduced {
			cr.Class = Confirmed
		}
	}
	sp.End()

	rep.Timings = TimingsFromRecorder(rec, mark)
	rep.Timings.Uninstrumented = uninstrumented
	rep.group()
	return rep
}

// group buckets cycle reports into defect reports by signature.
func (r *Report) group() {
	bySig := make(map[string]*DefectReport)
	for _, cr := range r.Cycles {
		sig := cr.Cycle.Signature()
		d := bySig[sig]
		if d == nil {
			d = &DefectReport{Signature: sig}
			bySig[sig] = d
			r.Defects = append(r.Defects, d)
		}
		d.Cycles = append(d.Cycles, cr)
	}
	for _, d := range r.Defects {
		d.classify()
	}
}
