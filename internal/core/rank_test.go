package core

import (
	"math"
	"testing"
	"time"
)

// TestRankOrder: confirmed defects first, unknowns by ascending Gs,
// generator refutations above pruner refutations.
func TestRankOrder(t *testing.T) {
	rep := &Report{
		Defects: []*DefectReport{
			{Signature: "pruned", Class: FalseByPruner},
			{Signature: "unknown-big", Class: Unknown,
				Cycles: []*CycleReport{{GsSize: 90}}},
			{Signature: "genfp", Class: FalseByGenerator},
			{Signature: "confirmed", Class: Confirmed,
				Cycles: []*CycleReport{{GsSize: 10, Class: Confirmed}}},
			{Signature: "unknown-small", Class: Unknown,
				Cycles: []*CycleReport{{GsSize: 5}}},
		},
	}
	got := rep.Rank()
	want := []string{"confirmed", "unknown-small", "unknown-big", "genfp", "pruned"}
	for i, d := range got {
		if d.Signature != want[i] {
			t.Fatalf("rank[%d] = %s, want %s", i, d.Signature, want[i])
		}
	}
	// The original order is untouched.
	if rep.Defects[0].Signature != "pruned" {
		t.Fatal("Rank mutated the report")
	}
}

// TestRankTiesDeterministic: equal-class, equal-size defects order by
// signature.
func TestRankTiesDeterministic(t *testing.T) {
	rep := &Report{
		Defects: []*DefectReport{
			{Signature: "b", Class: Unknown, Cycles: []*CycleReport{{GsSize: 7}}},
			{Signature: "a", Class: Unknown, Cycles: []*CycleReport{{GsSize: 7}}},
		},
	}
	got := rep.Rank()
	if got[0].Signature != "a" || got[1].Signature != "b" {
		t.Fatalf("tie order = %s,%s", got[0].Signature, got[1].Signature)
	}
}

// TestRankOnRealPipeline: Figure 2's ranking puts the confirmed defects
// above the generator-refuted θ4.
func TestRankOnRealPipeline(t *testing.T) {
	seed := findDetectionSeed(t, figure2Factory)
	rep := Analyze(figure2Factory, Config{DetectSeeds: []int64{seed}})
	ranked := rep.Rank()
	if len(ranked) != 3 {
		t.Fatalf("defects = %d", len(ranked))
	}
	if ranked[0].Class != Confirmed || ranked[1].Class != Confirmed {
		t.Fatalf("top ranks not confirmed: %v %v", ranked[0].Class, ranked[1].Class)
	}
	if ranked[2].Class != FalseByGenerator {
		t.Fatalf("bottom rank = %v, want false(generator)", ranked[2].Class)
	}
}

// TestScoreDefect pins the corpus triage score's ordering properties:
// confirmation dominates, occurrences are monotone, and recency decays
// with a one-week half-life.
func TestScoreDefect(t *testing.T) {
	now := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	fresh := now.Add(-time.Hour)

	// A confirmed singleton outranks any unconfirmed record, no matter
	// how often or recently the latter recurred.
	confirmed := ScoreDefect(true, 1, now.Add(-365*24*time.Hour), now)
	hotCandidate := ScoreDefect(false, 1_000_000, now, now)
	if confirmed <= hotCandidate {
		t.Fatalf("confirmed %f <= hot candidate %f", confirmed, hotCandidate)
	}

	// More occurrences never score lower.
	prev := -1.0
	for _, occ := range []int{0, 1, 2, 10, 100, 10_000} {
		s := ScoreDefect(false, occ, fresh, now)
		if s <= prev {
			t.Fatalf("score not monotone in occurrences: occ=%d score=%f prev=%f", occ, s, prev)
		}
		prev = s
	}

	// Recency: newer last-seen scores higher, and a week of age halves
	// the recency component.
	recent := ScoreDefect(false, 5, fresh, now)
	stale := ScoreDefect(false, 5, now.Add(-30*24*time.Hour), now)
	if recent <= stale {
		t.Fatalf("recent %f <= stale %f", recent, stale)
	}
	base := ScoreDefect(false, 5, time.Time{}, now)
	weekOld := ScoreDefect(false, 5, now.Add(-7*24*time.Hour), now)
	atNow := ScoreDefect(false, 5, now, now)
	if got, want := weekOld-base, (atNow-base)/2; math.Abs(got-want) > 1e-9 {
		t.Fatalf("one-week decay = %f, want half of %f", got, atNow-base)
	}

	// A clock-skewed future last-seen clamps instead of exploding.
	if skew := ScoreDefect(false, 5, now.Add(time.Hour), now); skew != atNow {
		t.Fatalf("future last-seen = %f, want clamped to %f", skew, atNow)
	}
}
