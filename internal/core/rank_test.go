package core

import (
	"testing"
)

// TestRankOrder: confirmed defects first, unknowns by ascending Gs,
// generator refutations above pruner refutations.
func TestRankOrder(t *testing.T) {
	rep := &Report{
		Defects: []*DefectReport{
			{Signature: "pruned", Class: FalseByPruner},
			{Signature: "unknown-big", Class: Unknown,
				Cycles: []*CycleReport{{GsSize: 90}}},
			{Signature: "genfp", Class: FalseByGenerator},
			{Signature: "confirmed", Class: Confirmed,
				Cycles: []*CycleReport{{GsSize: 10, Class: Confirmed}}},
			{Signature: "unknown-small", Class: Unknown,
				Cycles: []*CycleReport{{GsSize: 5}}},
		},
	}
	got := rep.Rank()
	want := []string{"confirmed", "unknown-small", "unknown-big", "genfp", "pruned"}
	for i, d := range got {
		if d.Signature != want[i] {
			t.Fatalf("rank[%d] = %s, want %s", i, d.Signature, want[i])
		}
	}
	// The original order is untouched.
	if rep.Defects[0].Signature != "pruned" {
		t.Fatal("Rank mutated the report")
	}
}

// TestRankTiesDeterministic: equal-class, equal-size defects order by
// signature.
func TestRankTiesDeterministic(t *testing.T) {
	rep := &Report{
		Defects: []*DefectReport{
			{Signature: "b", Class: Unknown, Cycles: []*CycleReport{{GsSize: 7}}},
			{Signature: "a", Class: Unknown, Cycles: []*CycleReport{{GsSize: 7}}},
		},
	}
	got := rep.Rank()
	if got[0].Signature != "a" || got[1].Signature != "b" {
		t.Fatalf("tie order = %s,%s", got[0].Signature, got[1].Signature)
	}
}

// TestRankOnRealPipeline: Figure 2's ranking puts the confirmed defects
// above the generator-refuted θ4.
func TestRankOnRealPipeline(t *testing.T) {
	seed := findDetectionSeed(t, figure2Factory)
	rep := Analyze(figure2Factory, Config{DetectSeeds: []int64{seed}})
	ranked := rep.Rank()
	if len(ranked) != 3 {
		t.Fatalf("defects = %d", len(ranked))
	}
	if ranked[0].Class != Confirmed || ranked[1].Class != Confirmed {
		t.Fatalf("top ranks not confirmed: %v %v", ranked[0].Class, ranked[1].Class)
	}
	if ranked[2].Class != FalseByGenerator {
		t.Fatalf("bottom rank = %v, want false(generator)", ranked[2].Class)
	}
}
