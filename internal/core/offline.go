package core

import (
	"context"

	"wolf/internal/detect"
	"wolf/internal/obs"
	"wolf/internal/trace"
	"wolf/sim"
)

// AnalyzeTrace runs the offline half of the pipeline — cycle detection,
// Pruner and Generator — on a previously recorded trace (see the trace
// package's Write/Read). Replay needs the program, so surviving
// potential deadlocks stay Unknown; use Analyze for the full pipeline.
func AnalyzeTrace(tr *trace.Trace, cfg Config) *Report {
	rep, _ := AnalyzeTraceCtx(context.Background(), tr, cfg)
	return rep
}

// AnalyzeTraceCtx is AnalyzeTrace with cooperative cancellation for
// long-running callers such as the wolfd service: the context is checked
// between phases and between cycles within a phase, so a per-job timeout
// or a client disconnect abandons the analysis promptly instead of
// pinning a worker. On cancellation the partial report built so far is
// returned alongside the context's error.
//
// Phase timings are derived from obs spans ("cycle-detect", "prune",
// "generate"); when the caller's context carries a recorder — wolfd
// attaches one per job — the same spans feed its latency histograms.
func AnalyzeTraceCtx(ctx context.Context, tr *trace.Trace, cfg Config) (*Report, error) {
	rec := obs.FromContext(ctx)
	if rec == nil {
		rec = obs.NewRecorder()
		ctx = obs.WithRecorder(ctx, rec)
	}
	mark := rec.Mark()
	rep := &Report{Tool: "wolf(offline)"}
	finish := func() (*Report, error) {
		rep.Timings = TimingsFromRecorder(rec, mark)
		rep.group()
		return rep, ctx.Err()
	}

	_, sp := obs.Start(ctx, "cycle-detect")
	cycles := detect.CyclesCtx(ctx, tr, detect.Config{MaxLength: cfg.MaxCycleLen, NoReduce: cfg.NoReduce})
	for _, c := range cycles {
		rep.Cycles = append(rep.Cycles, &CycleReport{Cycle: c, Trace: tr})
	}
	sp.Add("cycles", int64(len(cycles)))
	sp.End()
	if ctx.Err() != nil {
		return finish()
	}

	_, sp = obs.Start(ctx, "prune")
	if !cfg.DisablePruner {
		// One batched PruneCtx call for the whole trace: a single
		// "pruner.prune" span carries the aggregate cycle counts instead
		// of one cycles=1 span per cycle.
		pruneCycles(ctx, rep.Cycles)
	}
	sp.End()
	if ctx.Err() != nil {
		return finish()
	}

	// Generator fan-out across the configured worker pool; see
	// generateCycles for why the result is schedule-independent.
	_, sp = obs.Start(ctx, "generate")
	generateCycles(ctx, rep.Cycles, &cfg)
	sp.End()

	return finish()
}

// Record performs one instrumented run with the given seed and returns
// the recorded trace, for offline analysis or archiving.
func Record(f sim.Factory, seed int64, maxSteps int) *trace.Trace {
	tr, _ := record(f, seed, maxSteps, true)
	return tr
}
