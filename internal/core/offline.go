package core

import (
	"context"

	"wolf/internal/detect"
	"wolf/internal/obs"
	"wolf/internal/pruner"
	"wolf/internal/sdg"
	"wolf/internal/trace"
	"wolf/sim"
)

// AnalyzeTrace runs the offline half of the pipeline — cycle detection,
// Pruner and Generator — on a previously recorded trace (see the trace
// package's Write/Read). Replay needs the program, so surviving
// potential deadlocks stay Unknown; use Analyze for the full pipeline.
func AnalyzeTrace(tr *trace.Trace, cfg Config) *Report {
	rep, _ := AnalyzeTraceCtx(context.Background(), tr, cfg)
	return rep
}

// AnalyzeTraceCtx is AnalyzeTrace with cooperative cancellation for
// long-running callers such as the wolfd service: the context is checked
// between phases and between cycles within a phase, so a per-job timeout
// or a client disconnect abandons the analysis promptly instead of
// pinning a worker. On cancellation the partial report built so far is
// returned alongside the context's error.
//
// Phase timings are derived from obs spans ("cycle-detect", "prune",
// "generate"); when the caller's context carries a recorder — wolfd
// attaches one per job — the same spans feed its latency histograms.
func AnalyzeTraceCtx(ctx context.Context, tr *trace.Trace, cfg Config) (*Report, error) {
	rec := obs.FromContext(ctx)
	if rec == nil {
		rec = obs.NewRecorder()
		ctx = obs.WithRecorder(ctx, rec)
	}
	mark := rec.Mark()
	rep := &Report{Tool: "wolf(offline)"}
	finish := func() (*Report, error) {
		rep.Timings = TimingsFromRecorder(rec, mark)
		rep.group()
		return rep, ctx.Err()
	}

	_, sp := obs.Start(ctx, "cycle-detect")
	cycles := detect.CyclesCtx(ctx, tr, detect.Config{MaxLength: cfg.MaxCycleLen, NoReduce: cfg.NoReduce})
	for _, c := range cycles {
		rep.Cycles = append(rep.Cycles, &CycleReport{Cycle: c, Trace: tr})
	}
	sp.Add("cycles", int64(len(cycles)))
	sp.End()
	if ctx.Err() != nil {
		return finish()
	}

	_, sp = obs.Start(ctx, "prune")
	if !cfg.DisablePruner && tr.Clocks != nil {
		for _, cr := range rep.Cycles {
			if ctx.Err() != nil {
				break
			}
			res := pruner.PruneCtx(ctx, []*detect.Cycle{cr.Cycle}, tr.Clocks)
			if res.Verdicts[0] == pruner.False {
				cr.Class = FalseByPruner
				cr.PruneReason = res.Reasons[0]
			}
		}
	}
	sp.End()
	if ctx.Err() != nil {
		return finish()
	}

	_, sp = obs.Start(ctx, "generate")
	for _, cr := range rep.Cycles {
		if ctx.Err() != nil {
			break
		}
		if cr.Class == FalseByPruner {
			continue
		}
		cr.Gs = sdg.BuildKindsCtx(ctx, cr.Cycle, tr, cfg.edgeKinds())
		cr.GsSize = cr.Gs.Size()
		if !cfg.DisableGenerator && cr.Gs.Cyclic() {
			cr.Class = FalseByGenerator
			if cfg.DataDependency {
				base := sdg.BuildKindsCtx(ctx, cr.Cycle, tr, cfg.edgeKinds()&^sdg.V)
				if !base.Cyclic() {
					cr.Class = FalseByData
				}
			}
		}
	}
	sp.End()

	return finish()
}

// Record performs one instrumented run with the given seed and returns
// the recorded trace, for offline analysis or archiving.
func Record(f sim.Factory, seed int64, maxSteps int) *trace.Trace {
	tr, _ := record(f, seed, maxSteps, true)
	return tr
}
