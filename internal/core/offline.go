package core

import (
	"time"

	"wolf/internal/detect"
	"wolf/internal/pruner"
	"wolf/internal/sdg"
	"wolf/internal/trace"
	"wolf/sim"
)

// AnalyzeTrace runs the offline half of the pipeline — cycle detection,
// Pruner and Generator — on a previously recorded trace (see the trace
// package's Write/Read). Replay needs the program, so surviving
// potential deadlocks stay Unknown; use Analyze for the full pipeline.
func AnalyzeTrace(tr *trace.Trace, cfg Config) *Report {
	rep := &Report{Tool: "wolf(offline)"}
	start := time.Now()
	for _, c := range detect.Cycles(tr, detect.Config{MaxLength: cfg.MaxCycleLen, NoReduce: cfg.NoReduce}) {
		rep.Cycles = append(rep.Cycles, &CycleReport{Cycle: c, Trace: tr})
	}
	rep.Timings.CycleDetect = time.Since(start)

	start = time.Now()
	if !cfg.DisablePruner && tr.Clocks != nil {
		for _, cr := range rep.Cycles {
			res := pruner.Prune([]*detect.Cycle{cr.Cycle}, tr.Clocks)
			if res.Verdicts[0] == pruner.False {
				cr.Class = FalseByPruner
				cr.PruneReason = res.Reasons[0]
			}
		}
	}
	rep.Timings.Prune = time.Since(start)

	start = time.Now()
	for _, cr := range rep.Cycles {
		if cr.Class == FalseByPruner {
			continue
		}
		cr.Gs = sdg.BuildKinds(cr.Cycle, tr, cfg.edgeKinds())
		cr.GsSize = cr.Gs.Size()
		if !cfg.DisableGenerator && cr.Gs.Cyclic() {
			cr.Class = FalseByGenerator
			if cfg.DataDependency {
				base := sdg.BuildKinds(cr.Cycle, tr, cfg.edgeKinds()&^sdg.V)
				if !base.Cyclic() {
					cr.Class = FalseByData
				}
			}
		}
	}
	rep.Timings.Generate = time.Since(start)

	rep.group()
	return rep
}

// Record performs one instrumented run with the given seed and returns
// the recorded trace, for offline analysis or archiving.
func Record(f sim.Factory, seed int64, maxSteps int) *trace.Trace {
	tr, _ := record(f, seed, maxSteps, true)
	return tr
}
