package core

import (
	"testing"

	"wolf/sim"
)

// fig4Factory is the paper's running example (Figure 4).
func fig4Factory() (sim.Program, sim.Options) {
	var l1, l2, l3 *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		l1, l2, l3 = w.NewLock("l1"), w.NewLock("l2"), w.NewLock("l3")
	}}
	t3body := func(u *sim.Thread) {
		u.Lock(l3, "31")
		u.Lock(l2, "32")
		u.Lock(l1, "33")
		u.Unlock(l1, "34")
		u.Unlock(l2, "35")
		u.Unlock(l3, "36")
	}
	prog := func(th *sim.Thread) {
		th.Lock(l1, "11")
		th.Lock(l2, "12")
		th.Unlock(l2, "13")
		th.Unlock(l1, "14")
		th.Go("t2", func(u *sim.Thread) { u.Go("t3", t3body, "21") }, "15")
		th.Lock(l3, "16")
		th.Unlock(l3, "17")
		th.Lock(l1, "18")
		th.Lock(l2, "19")
		th.Unlock(l2, "20")
		th.Unlock(l1, "21")
	}
	return prog, opts
}

// figure2Factory is the paper's Figure 2 synchronized-maps scenario.
func figure2Factory() (sim.Program, sim.Options) {
	var m1, m2 *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		m1, m2 = w.NewLock("mutex#SM1"), w.NewLock("mutex#SM2")
	}}
	equals := func(mine, other *sim.Lock) sim.Program {
		return func(u *sim.Thread) {
			u.Lock(mine, "2024")
			u.Lock(other, "509")
			u.Unlock(other, "509u")
			u.Lock(other, "522")
			u.Unlock(other, "522u")
			u.Unlock(mine, "2025")
		}
	}
	prog := func(th *sim.Thread) {
		h1 := th.Go("t1", equals(m1, m2), "s1")
		h2 := th.Go("t2", equals(m2, m1), "s2")
		th.Join(h1, "j1")
		th.Join(h2, "j2")
	}
	return prog, opts
}

// classOf returns the classification of the defect with the signature.
func classOf(t *testing.T, rep *Report, sig string) Classification {
	t.Helper()
	for _, d := range rep.Defects {
		if d.Signature == sig {
			return d.Class
		}
	}
	t.Fatalf("defect %s not found in %v", sig, rep)
	return Unknown
}

// findDetectionSeed returns a seed whose recorded run terminates (so the
// full trace is observed) for the given factory.
func findDetectionSeed(t *testing.T, f sim.Factory) int64 {
	t.Helper()
	for seed := int64(1); seed < 200; seed++ {
		prog, opts := f()
		if out := sim.Run(prog, sim.NewRandomStrategy(seed), opts); out.Kind == sim.Terminated {
			return seed
		}
	}
	t.Fatal("no terminating detection seed found")
	return 0
}

// TestFigure4Pipeline: θ1 pruned, θ2 confirmed — the paper's running
// example end to end.
func TestFigure4Pipeline(t *testing.T) {
	seed := findDetectionSeed(t, fig4Factory)
	rep := Analyze(fig4Factory, Config{DetectSeeds: []int64{seed}})
	if len(rep.Cycles) != 2 {
		t.Fatalf("cycles = %d, want 2\n%v", len(rep.Cycles), rep)
	}
	if got := classOf(t, rep, "12+33"); got != FalseByPruner {
		t.Errorf("θ1 class = %v, want false(pruner)", got)
	}
	if got := classOf(t, rep, "19+33"); got != Confirmed {
		t.Errorf("θ2 class = %v, want confirmed", got)
	}
	pr, gen, conf, unk := rep.CountDefects()
	if pr != 1 || gen != 0 || conf != 1 || unk != 0 {
		t.Errorf("defect counts = %d/%d/%d/%d, want 1/0/1/0", pr, gen, conf, unk)
	}
}

// TestFigure2Pipeline: θ4 refuted by the Generator, the rest confirmed —
// three defects total.
func TestFigure2Pipeline(t *testing.T) {
	seed := findDetectionSeed(t, figure2Factory)
	rep := Analyze(figure2Factory, Config{DetectSeeds: []int64{seed}})
	if len(rep.Defects) != 3 {
		t.Fatalf("defects = %d, want 3\n%v", len(rep.Defects), rep)
	}
	if got := classOf(t, rep, "522+522"); got != FalseByGenerator {
		t.Errorf("θ4 class = %v, want false(generator)", got)
	}
	if got := classOf(t, rep, "509+509"); got != Confirmed {
		t.Errorf("θ1 class = %v, want confirmed", got)
	}
	if got := classOf(t, rep, "509+522"); got != Confirmed {
		t.Errorf("θ2/θ3 class = %v, want confirmed", got)
	}
}

// TestDFBaselinePipeline: DeadlockFuzzer confirms some defects but can
// never classify false positives; θ4 stays unknown.
func TestDFBaselinePipeline(t *testing.T) {
	seed := findDetectionSeed(t, figure2Factory)
	rep := AnalyzeDF(figure2Factory, Config{DetectSeeds: []int64{seed}, ReplayAttempts: 10})
	if len(rep.Defects) != 3 {
		t.Fatalf("defects = %d, want 3\n%v", len(rep.Defects), rep)
	}
	pr, gen, _, _ := rep.CountDefects()
	if pr != 0 || gen != 0 {
		t.Errorf("DF reported false positives: %d/%d", pr, gen)
	}
	if got := classOf(t, rep, "522+522"); got != Unknown {
		t.Errorf("θ4 class under DF = %v, want unknown", got)
	}
	if got := classOf(t, rep, "509+509"); got != Confirmed {
		t.Errorf("θ1 class under DF = %v, want confirmed", got)
	}
}

// TestPrunerAblation: with the Pruner disabled, θ1 of Figure 4 is not
// refuted; its Gs is acyclic but replay cannot reproduce an infeasible
// deadlock, so it degrades to Unknown — demonstrating the Pruner's value.
func TestPrunerAblation(t *testing.T) {
	seed := findDetectionSeed(t, fig4Factory)
	rep := Analyze(fig4Factory, Config{DetectSeeds: []int64{seed}, DisablePruner: true})
	if got := classOf(t, rep, "12+33"); got != Unknown {
		t.Errorf("θ1 class without pruner = %v, want unknown", got)
	}
	if got := classOf(t, rep, "19+33"); got != Confirmed {
		t.Errorf("θ2 class without pruner = %v, want confirmed", got)
	}
}

// TestGeneratorAblation: with the Generator's cycle check disabled, θ4
// goes to the Replayer, which cannot reproduce it → Unknown instead of
// a clean false-positive verdict.
func TestGeneratorAblation(t *testing.T) {
	seed := findDetectionSeed(t, figure2Factory)
	rep := Analyze(figure2Factory, Config{DetectSeeds: []int64{seed}, DisableGenerator: true})
	if got := classOf(t, rep, "522+522"); got != Unknown {
		t.Errorf("θ4 class without generator = %v, want unknown", got)
	}
}

// TestTimingsPopulated: every phase records a duration and the slowdown
// statistic is positive.
func TestTimingsPopulated(t *testing.T) {
	rep := Analyze(figure2Factory, Config{})
	tm := rep.Timings
	if tm.Uninstrumented <= 0 || tm.Detect() <= 0 {
		t.Errorf("timings not populated: %+v", tm)
	}
	if tm.DetectionSlowdown() <= 0 {
		t.Errorf("slowdown = %v, want > 0", tm.DetectionSlowdown())
	}
}

// TestStatsPopulated: SL and Vs statistics are in the expected ranges
// for Figure 4 (SL = 2.5; Vs = 8 for θ2).
func TestStatsPopulated(t *testing.T) {
	seed := findDetectionSeed(t, fig4Factory)
	rep := Analyze(fig4Factory, Config{DetectSeeds: []int64{seed}})
	if got := rep.AvgStackLen(); got != 2.5 {
		t.Errorf("SL = %v, want 2.5", got)
	}
	if got := rep.AvgGsSize(); got != 8 {
		t.Errorf("Vs = %v, want 8 (θ2's graph)", got)
	}
}

// TestMultiSeedDeduplication: detecting on several seeds must not
// duplicate cycles.
func TestMultiSeedDeduplication(t *testing.T) {
	seed := findDetectionSeed(t, figure2Factory)
	rep1 := Analyze(figure2Factory, Config{DetectSeeds: []int64{seed}})
	rep3 := Analyze(figure2Factory, Config{DetectSeeds: []int64{seed, seed + 1000, seed + 2000}})
	if len(rep3.Cycles) < len(rep1.Cycles) {
		t.Fatalf("multi-seed found fewer cycles (%d) than single seed (%d)",
			len(rep3.Cycles), len(rep1.Cycles))
	}
	// The same four source-location cycles must not appear twice.
	seen := map[string]int{}
	for _, cr := range rep3.Cycles {
		seen[cycleKey(cr.Cycle)]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Errorf("cycle %s appears %d times", k, n)
		}
	}
}

// TestDeadlockedDetectionRun: when the recorded run itself deadlocks the
// pipeline still produces a report (the trace is simply shorter).
func TestDeadlockedDetectionRun(t *testing.T) {
	var deadSeed int64 = -1
	for seed := int64(0); seed < 300; seed++ {
		prog, opts := figure2Factory()
		if out := sim.Run(prog, sim.NewRandomStrategy(seed), opts); out.Kind == sim.Deadlocked {
			deadSeed = seed
			break
		}
	}
	if deadSeed < 0 {
		t.Skip("no deadlocking seed found")
	}
	rep := Analyze(figure2Factory, Config{DetectSeeds: []int64{deadSeed}})
	if len(rep.Cycles) == 0 {
		t.Log("deadlocked trace contained no complete cycle — acceptable")
	}
}
