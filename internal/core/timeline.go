package core

import (
	"fmt"
	"sort"

	"wolf/internal/detect"
	"wolf/internal/obs"
	"wolf/internal/replay"
	"wolf/internal/sdg"
	"wolf/internal/trace"
	"wolf/sim"
)

// TimelineListener renders an executing schedule as Chrome trace events
// on one process track group: one track per thread (tid = sim thread ID
// + 1, matching the replayer's pause markers), lock holds and monitor
// waits as duration slices, thread lifecycle and data accesses as
// instants, and a process-wide locks-held counter. Timestamps are the
// sim step counter, so identical schedules export identical timelines.
type TimelineListener struct {
	tl  *obs.Timeline
	pid int64
	// held is each thread's stack of open slices, innermost last. Lock
	// releases may be out of LIFO order while Chrome slices must nest,
	// so release closes intervening slices and reopens them.
	held  map[string][]openSlice
	tids  map[string]int64
	locks int64
}

// openSlice is one open duration slice on a thread track.
type openSlice struct{ name, cat string }

// NewTimelineListener returns a listener emitting onto tl under pid.
func NewTimelineListener(tl *obs.Timeline, pid int64) *TimelineListener {
	return &TimelineListener{
		tl:   tl,
		pid:  pid,
		held: make(map[string][]openSlice),
		tids: make(map[string]int64),
	}
}

// tid interns the thread's track, emitting its metadata on first use.
func (l *TimelineListener) tid(t *sim.Thread) int64 {
	name := t.Name()
	tid, ok := l.tids[name]
	if !ok {
		tid = int64(t.ID()) + 1
		l.tids[name] = tid
		l.tl.Thread(l.pid, tid, name)
	}
	return tid
}

// counter samples the process-wide locks-held series.
func (l *TimelineListener) counter(ts int64) {
	l.tl.Counter(l.pid, 0, "locks-held", ts, map[string]any{"locks": l.locks})
}

// open starts a slice on the thread's track and pushes it on the stack.
func (l *TimelineListener) open(tid int64, thread string, sl openSlice, ts int64, args map[string]any) {
	l.tl.Begin(l.pid, tid, sl.name, sl.cat, ts, args)
	l.held[thread] = append(l.held[thread], sl)
}

// release closes the named slice. When it is not the innermost open
// slice the slices above it are closed and immediately reopened at the
// same timestamp, preserving Chrome's strict per-track nesting.
func (l *TimelineListener) release(tid int64, thread, name string, ts int64) {
	stack := l.held[thread]
	i := len(stack) - 1
	for i >= 0 && stack[i].name != name {
		i--
	}
	if i < 0 {
		return
	}
	for j := len(stack) - 1; j >= i; j-- {
		l.tl.End(l.pid, tid, ts)
	}
	for j := i + 1; j < len(stack); j++ {
		l.tl.Begin(l.pid, tid, stack[j].name, stack[j].cat, ts, nil)
	}
	l.held[thread] = append(stack[:i], stack[i+1:]...)
}

// closeAll ends every open slice of the thread.
func (l *TimelineListener) closeAll(tid int64, thread string, ts int64) {
	for range l.held[thread] {
		l.tl.End(l.pid, tid, ts)
	}
	delete(l.held, thread)
}

// OnEvent implements sim.Listener.
func (l *TimelineListener) OnEvent(ev sim.Event) {
	ts := int64(ev.Step)
	tid := l.tid(ev.Thread)
	thread := ev.Thread.Name()
	switch ev.Op.Kind {
	case sim.OpBegin:
		l.tl.Instant(l.pid, tid, "begin", "thread", ts, "t", nil)
	case sim.OpLock:
		if ev.Reentrant {
			return
		}
		l.open(tid, thread, openSlice{ev.Op.Lock.Name(), "lock"}, ts, map[string]any{"site": ev.Op.Site})
		l.locks++
		l.counter(ts)
	case sim.OpUnlock:
		if ev.Reentrant {
			return
		}
		l.release(tid, thread, ev.Op.Lock.Name(), ts)
		l.locks--
		l.counter(ts)
	case sim.OpWait:
		// wait releases the monitor entirely (whatever its reentrancy
		// depth) and blocks in the wait set.
		l.release(tid, thread, ev.Op.Lock.Name(), ts)
		l.locks--
		l.open(tid, thread, openSlice{"wait " + ev.Op.Lock.Name(), "monitor"}, ts, map[string]any{"site": ev.Op.Site})
		l.counter(ts)
	case sim.OpWaitResume:
		// The notified thread reacquired the monitor.
		l.release(tid, thread, "wait "+ev.Op.Lock.Name(), ts)
		l.open(tid, thread, openSlice{ev.Op.Lock.Name(), "lock"}, ts, map[string]any{"site": ev.Op.Site})
		l.locks++
		l.counter(ts)
	case sim.OpNotify, sim.OpNotifyAll:
		l.tl.Instant(l.pid, tid, ev.Op.Kind.String()+" "+ev.Op.Lock.Name(), "monitor", ts, "t", map[string]any{"site": ev.Op.Site})
	case sim.OpStart:
		l.tl.Instant(l.pid, tid, "start "+ev.Op.Child.Name(), "thread", ts, "t", map[string]any{"site": ev.Op.Site})
	case sim.OpJoin:
		l.tl.Instant(l.pid, tid, "join "+ev.Op.Target.Name(), "thread", ts, "t", map[string]any{"site": ev.Op.Site})
	case sim.OpLoad:
		l.tl.Instant(l.pid, tid, "load "+ev.Op.Var.Name(), "data", ts, "t", map[string]any{"site": ev.Op.Site})
	case sim.OpStore:
		l.tl.Instant(l.pid, tid, "store "+ev.Op.Var.Name(), "data", ts, "t",
			map[string]any{"site": ev.Op.Site, "val": fmt.Sprint(ev.Op.Val)})
	case sim.OpExit:
		l.closeAll(tid, thread, ts)
		l.tl.Instant(l.pid, tid, "exit", "thread", ts, "t", nil)
	case sim.OpPanic:
		l.closeAll(tid, thread, ts)
		l.tl.Instant(l.pid, tid, "panic", "thread", ts, "t", nil)
	}
}

// Finish closes the slices still open when the run stopped (threads
// blocked in a deadlock hold their locks forever) and, for deadlocked
// outcomes, draws a global deadlock marker plus a per-thread blocked
// instant carrying the blocking operation and held locks. Call it after
// sim.Run returns — and, on replayed runs, after the replayer has closed
// its pause slices, so nesting stays balanced.
func (l *TimelineListener) Finish(out *sim.Outcome) {
	ts := int64(out.Steps)
	if out.Deadlocked() {
		for _, b := range out.Blocked {
			tid, ok := l.tids[b.Thread]
			if !ok {
				continue
			}
			args := map[string]any{"op": b.Op.String()}
			if len(b.Holding) > 0 {
				args["holding"] = fmt.Sprint(b.Holding)
			}
			l.tl.Instant(l.pid, tid, "blocked", "outcome", ts, "t", args)
		}
		l.tl.Instant(l.pid, 0, "deadlock", "outcome", ts, "g", nil)
	}
	open := make([]string, 0, len(l.held))
	for thread, stack := range l.held {
		if len(stack) > 0 {
			open = append(open, thread)
		}
	}
	sort.Strings(open) // deterministic close order for golden tests
	for _, thread := range open {
		l.closeAll(l.tids[thread], thread, ts)
	}
}

// RunTimeline executes one run of f under the given schedule seed while
// exporting it to tl under pid. The sim scheduler is deterministic per
// seed, so re-running the seed an analysis used reproduces the exact
// recorded schedule.
func RunTimeline(f sim.Factory, seed int64, maxSteps int, tl *obs.Timeline, pid int64) *sim.Outcome {
	prog, opts := f()
	l := NewTimelineListener(tl, pid)
	opts.Listeners = append(opts.Listeners, l)
	if maxSteps > 0 {
		opts.MaxSteps = maxSteps
	}
	out := sim.Run(prog, sim.NewRandomStrategy(seed), opts)
	l.Finish(out)
	return out
}

// ReplayTimeline executes one steered replay attempt while exporting
// both the executed operations and the replayer's steering (pause
// slices, force-release markers) to tl under pid.
func ReplayTimeline(f sim.Factory, g *sdg.Graph, cycle *detect.Cycle, seed int64, maxSteps int, tl *obs.Timeline, pid int64) *sim.Outcome {
	l := NewTimelineListener(tl, pid)
	out := replay.AttemptObserved(f, g, cycle, seed, maxSteps, replay.Observer{
		Timeline:  tl,
		Pid:       pid,
		Listeners: []sim.Listener{l},
	})
	l.Finish(out)
	return out
}

// TimelineFromTrace renders a recorded trace on tl under pid. Dσ keeps
// only first lock acquisitions (no releases), so each tuple becomes an
// instant on its thread's track at its global trace position, with the
// lockset size as a per-thread counter; this is the view wolfd serves
// for archived jobs, where the program is gone and only the trace
// remains.
func TimelineFromTrace(tr *trace.Trace, tl *obs.Timeline, pid int64) {
	tl.Process(pid, fmt.Sprintf("trace seed=%d", tr.Seed))
	tids := make(map[string]int64)
	for i, tp := range tr.Tuples {
		tid, ok := tids[tp.Thread]
		if !ok {
			tid = int64(tp.ThreadID) + 1
			tids[tp.Thread] = tid
			tl.Thread(pid, tid, tp.Thread)
		}
		ts := int64(i)
		tl.Instant(pid, tid, "lock "+tp.Lock, "trace", ts, "t",
			map[string]any{"site": tp.Site, "held": len(tp.Held)})
		tl.Counter(pid, tid, "locks-held "+tp.Thread, ts, map[string]any{"locks": len(tp.Held) + 1})
	}
}

// BuildTimeline renders an analysis as a Perfetto-loadable timeline:
// process 1 is the recorded detection run of the first seed; when the
// report confirmed a deadlock, process 2 is the steered replay attempt
// that reproduced the first confirmed cycle (Reproduce stops on its
// first hit, so the hitting seed is ReplaySeed + attempts - 1). Both
// runs are re-executions under the seeds the analysis used.
func BuildTimeline(f sim.Factory, cfg Config, rep *Report) *obs.Timeline {
	tl := obs.NewTimeline()
	seed := cfg.detectSeeds()[0]
	tl.Process(1, fmt.Sprintf("detect seed=%d", seed))
	RunTimeline(f, seed, cfg.MaxSteps, tl, 1)
	for _, cr := range rep.Cycles {
		if cr.Class != Confirmed {
			continue
		}
		replaySeed := cfg.ReplaySeed + int64(cr.ReplayAttempts-1)
		tl.Process(2, fmt.Sprintf("replay %s seed=%d", cr.Cycle.Signature(), replaySeed))
		ReplayTimeline(f, cr.Gs, cr.Cycle, replaySeed, cfg.MaxSteps, tl, 2)
		break
	}
	return tl
}
