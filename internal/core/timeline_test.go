package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"wolf/internal/obs"
	"wolf/sim"
)

var update = flag.Bool("update", false, "rewrite timeline golden files")

// checkGolden validates got as trace-event JSON and compares it against
// the named golden file (rewritten under -update).
func checkGolden(t *testing.T, name string, tl *obs.Timeline) {
	t.Helper()
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := obs.ValidateTimeline(buf.Bytes()); err != nil {
		t.Fatalf("exported timeline invalid: %v", err)
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("timeline differs from %s (run with -update to rebless):\ngot:\n%s", path, buf.String())
	}
}

// TestBuildTimelineGolden pins the full -timeline export for the
// paper's Figure 4: the detection run (process 1) and the steered
// replay of the confirmed cycle with its pause markers (process 2).
// Timestamps are sim steps, so the export is bit-identical across
// machines.
func TestBuildTimelineGolden(t *testing.T) {
	cfg := Config{DetectSeeds: []int64{1}}
	rep := Analyze(fig4Factory, cfg)
	if _, _, conf, _ := rep.CountDefects(); conf != 1 {
		t.Fatalf("confirmed defects = %d, want 1\n%v", conf, rep)
	}
	checkGolden(t, "timeline_fig4.json", BuildTimeline(fig4Factory, cfg, rep))
}

// monitorFactory exercises the listener paths a lock-only workload
// misses: out-of-LIFO-order releases (the slice reopen fixup),
// wait/notify slices, and data accesses.
func monitorFactory() (sim.Program, sim.Options) {
	var a, b *sim.Lock
	var v *sim.Var
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b = w.NewLock("a"), w.NewLock("b")
		v = w.NewVar("v", 0)
	}}
	prog := func(th *sim.Thread) {
		child := th.Go("child", func(u *sim.Thread) {
			u.Lock(a, "c1")
			u.Store(v, 1, "c2")
			u.Notify(a, "c3")
			u.Unlock(a, "c4")
		}, "m1")
		th.Lock(a, "m2")
		th.Lock(b, "m3")
		th.Unlock(a, "m4") // out of order: a released while b stays held
		th.Unlock(b, "m5")
		th.Lock(a, "m6")
		for th.LoadInt(v, "m7") == 0 {
			th.Wait(a, "m8")
		}
		th.Unlock(a, "m9")
		th.Join(child, "m10")
	}
	return prog, opts
}

// TestRunTimelineMonitorGolden pins the wait/notify and out-of-order
// release rendering. The seed is searched for deterministically: the
// first one whose run terminates and actually parks main in the wait
// set (schedules where the child stores v first never wait).
func TestRunTimelineMonitorGolden(t *testing.T) {
	for seed := int64(1); seed < 500; seed++ {
		tl := obs.NewTimeline()
		tl.Process(1, "monitor")
		out := RunTimeline(monitorFactory, seed, 0, tl, 1)
		waited := false
		for _, ev := range tl.Events() {
			if ev.Ph == "B" && ev.Name == "wait a" {
				waited = true
			}
		}
		if out.Kind != sim.Terminated || !waited {
			continue
		}
		checkGolden(t, "timeline_monitor.json", tl)
		return
	}
	t.Fatal("no terminating seed that exercises Wait")
}

// TestRunTimelineDeadlock checks the deadlock rendering: a global
// deadlock marker, per-thread blocked instants, and lock slices closed
// at the final step even though the threads never released them.
func TestRunTimelineDeadlock(t *testing.T) {
	// Find a seed whose run deadlocks.
	var seed int64
	for s := int64(1); s < 500; s++ {
		prog, opts := fig4Factory()
		if out := sim.Run(prog, sim.NewRandomStrategy(s), opts); out.Deadlocked() {
			seed = s
			break
		}
	}
	if seed == 0 {
		t.Skip("no deadlocking seed for fig4 in range")
	}
	tl := obs.NewTimeline()
	tl.Process(1, "deadlock run")
	out := RunTimeline(fig4Factory, seed, 0, tl, 1)
	if !out.Deadlocked() {
		t.Fatalf("outcome = %v, want Deadlocked", out.Kind)
	}
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTimeline(buf.Bytes()); err != nil {
		t.Fatalf("deadlock timeline invalid: %v", err)
	}
	gotGlobal, gotBlocked := false, 0
	for _, ev := range tl.Events() {
		if ev.Ph == "i" && ev.Name == "deadlock" && ev.S == "g" {
			gotGlobal = true
		}
		if ev.Ph == "i" && ev.Name == "blocked" {
			gotBlocked++
		}
	}
	if !gotGlobal {
		t.Error("no global deadlock instant")
	}
	if gotBlocked != len(out.Blocked) {
		t.Errorf("blocked instants = %d, want %d", gotBlocked, len(out.Blocked))
	}
}

// TestTimelineFromTrace checks the trace-only rendering wolfd serves:
// one instant per tuple, one track per thread, valid output.
func TestTimelineFromTrace(t *testing.T) {
	seed := findDetectionSeed(t, fig4Factory)
	tr := Record(fig4Factory, seed, 0)
	tl := obs.NewTimeline()
	TimelineFromTrace(tr, tl, 1)
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTimeline(buf.Bytes()); err != nil {
		t.Fatalf("trace timeline invalid: %v", err)
	}
	instants := 0
	for _, ev := range tl.Events() {
		if ev.Ph == "i" {
			instants++
		}
	}
	if instants != len(tr.Tuples) {
		t.Errorf("instants = %d, want one per tuple (%d)", instants, len(tr.Tuples))
	}
}

// TestReplayTimelinePauses checks that a steered replay that hits the
// deadlock exports pause slices from the replayer on the same tracks as
// the executed operations.
func TestReplayTimelinePauses(t *testing.T) {
	cfg := Config{DetectSeeds: []int64{1}}
	rep := Analyze(fig4Factory, cfg)
	for _, cr := range rep.Cycles {
		if cr.Class != Confirmed {
			continue
		}
		seed := cfg.ReplaySeed + int64(cr.ReplayAttempts-1)
		tl := obs.NewTimeline()
		tl.Process(1, "replay")
		out := ReplayTimeline(fig4Factory, cr.Gs, cr.Cycle, seed, cfg.MaxSteps, tl, 1)
		if !out.Deadlocked() {
			t.Fatalf("replay outcome = %v, want Deadlocked", out.Kind)
		}
		var buf bytes.Buffer
		if err := tl.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateTimeline(buf.Bytes()); err != nil {
			t.Fatalf("replay timeline invalid: %v", err)
		}
		paused := 0
		for _, ev := range tl.Events() {
			if ev.Ph == "B" && ev.Name == "paused" {
				paused++
			}
		}
		if paused == 0 {
			t.Error("no pause slices in steered replay export")
		}
		return
	}
	t.Fatal("no confirmed cycle to replay")
}
