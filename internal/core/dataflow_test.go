package core

import (
	"testing"

	"wolf/internal/explore"
	"wolf/sim"
)

// watcherFactory is the minimal flag-ordered inversion: the watcher takes
// the inverted branch only after observing the publisher's flag, which
// the publisher raises after finishing its own ordered section.
func watcherFactory() (sim.Program, sim.Options) {
	var x, y *sim.Lock
	var flag *sim.Var
	opts := sim.Options{Setup: func(w *sim.World) {
		x, y = w.NewLock("X"), w.NewLock("Y")
		flag = w.NewVar("ready", false)
	}}
	prog := func(th *sim.Thread) {
		pub := th.Go("pub", func(u *sim.Thread) {
			u.Lock(x, "pub:1")
			u.Lock(y, "pub:2")
			u.Unlock(y, "pub:3")
			u.Unlock(x, "pub:4")
			u.Store(flag, true, "pub:5")
		}, "m1")
		wat := th.Go("wat", func(u *sim.Thread) {
			for i := 0; i < 2; i++ {
				if u.LoadBool(flag, "wat:poll") {
					u.Lock(y, "wat:1")
					u.Lock(x, "wat:2")
					u.Unlock(x, "wat:3")
					u.Unlock(y, "wat:4")
					return
				}
				u.Yield("wat:spin")
			}
		}, "m2")
		th.Join(pub, "m3")
		th.Join(wat, "m4")
	}
	return prog, opts
}

// TestDataRefutationMatchesGroundTruth: the exhaustive explorer proves
// the flag-ordered inversion can never deadlock; plain WOLF leaves it
// unknown; the value-flow extension refutes it.
func TestDataRefutationMatchesGroundTruth(t *testing.T) {
	ground, err := explore.Explore(watcherFactory, explore.Limits{MaxRuns: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	if ground.Truncated {
		t.Skip("ground truth truncated")
	}
	if ground.DeadlockFound() {
		t.Fatalf("the flag-ordered program deadlocked somewhere:\n%v", ground)
	}

	seed := findDetectionSeed(t, watcherFactory)
	base := Analyze(watcherFactory, Config{DetectSeeds: []int64{seed}, ReplayAttempts: 5})
	if len(base.Defects) != 1 {
		t.Fatalf("defects = %d, want 1 (cycle must be detected)", len(base.Defects))
	}
	if got := base.Defects[0].Class; got != Unknown {
		t.Fatalf("base class = %v, want unknown", got)
	}

	ext := Analyze(watcherFactory, Config{DetectSeeds: []int64{seed}, ReplayAttempts: 5, DataDependency: true})
	if got := ext.Defects[0].Class; got != FalseByData {
		t.Fatalf("extension class = %v, want false(data)", got)
	}
}

// realWithDataTrafficFactory has a REAL deadlock plus harmless flag
// traffic: the extension must not refute it.
func realWithDataTrafficFactory() (sim.Program, sim.Options) {
	var x, y *sim.Lock
	var counter *sim.Var
	opts := sim.Options{Setup: func(w *sim.World) {
		x, y = w.NewLock("X"), w.NewLock("Y")
		counter = w.NewVar("count", 0)
	}}
	prog := func(th *sim.Thread) {
		a := th.Go("a", func(u *sim.Thread) {
			u.Store(counter, 1, "a:0")
			u.Lock(x, "a:1")
			u.Lock(y, "a:2")
			u.Unlock(y, "a:3")
			u.Unlock(x, "a:4")
		}, "m1")
		b := th.Go("b", func(u *sim.Thread) {
			_ = u.LoadInt(counter, "b:0") // may or may not see a's store
			u.Lock(y, "b:1")
			u.Lock(x, "b:2")
			u.Unlock(x, "b:3")
			u.Unlock(y, "b:4")
		}, "m2")
		th.Join(a, "m3")
		th.Join(b, "m4")
	}
	return prog, opts
}

// TestDataExtensionKeepsRealDeadlock: value flow observed on the
// recorded trace (b happening to read a's store) must not refute a
// deadlock that is feasible — the V edges order the store before the
// load but that ordering is compatible with the deadlock.
func TestDataExtensionKeepsRealDeadlock(t *testing.T) {
	ground, err := explore.Explore(realWithDataTrafficFactory, explore.Limits{MaxRuns: 80_000})
	if err != nil {
		t.Fatal(err)
	}
	if !ground.Truncated && !ground.DeadlockFound() {
		t.Fatal("expected a feasible deadlock in the ground truth")
	}
	seed := findDetectionSeed(t, realWithDataTrafficFactory)
	ext := Analyze(realWithDataTrafficFactory, Config{
		DetectSeeds: []int64{seed}, ReplayAttempts: 10, DataDependency: true,
	})
	if len(ext.Defects) != 1 {
		t.Fatalf("defects = %d, want 1", len(ext.Defects))
	}
	if got := ext.Defects[0].Class; got != Confirmed {
		t.Fatalf("class = %v, want confirmed (extension must not refute a real deadlock)", got)
	}
}
