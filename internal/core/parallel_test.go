package core_test

// The determinism contract of the Generator fan-out: the JSON report
// produced at any Config.Parallelism must be byte-identical to the
// sequential Parallelism=1 run. Wall-clock phase timings can never be
// byte-stable across runs, so the test first asserts they are populated
// and then zeroes them before comparing; everything else — cycle order,
// verdicts, graph sizes, prune reasons, defect grouping — must match
// exactly. Run under -race (CI does) this also proves the worker pool
// is data-race free.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"wolf/internal/core"
	"wolf/internal/report"
	"wolf/internal/trace"
	"wolf/internal/workloads"
	"wolf/sim"
)

// valueFlowFactory builds a workload with `pairs` independent lock
// inversions plus cross-thread value flow, so analysis exercises every
// parallelized code path: many cycles, type-C context edges and type-V
// data edges with foreign producers.
func valueFlowFactory(pairs, iters int) sim.Factory {
	return func() (sim.Program, sim.Options) {
		type pairLocks struct {
			l, r *sim.Lock
			vars []*sim.Var
		}
		pls := make([]*pairLocks, pairs)
		opts := sim.Options{Setup: func(w *sim.World) {
			for p := 0; p < pairs; p++ {
				pl := &pairLocks{
					l: w.NewLock(fmt.Sprintf("A%d", p)),
					r: w.NewLock(fmt.Sprintf("B%d", p)),
				}
				for i := 0; i < iters; i++ {
					pl.vars = append(pl.vars, w.NewVar(fmt.Sprintf("v%d_%d", p, i), 0))
				}
				pls[p] = pl
			}
		}}
		body := func(p int, flip, writer bool) sim.Program {
			return func(u *sim.Thread) {
				pl := pls[p]
				for i := 0; i < iters; i++ {
					if writer {
						u.Store(pl.vars[i], i, "store")
					} else {
						u.Load(pl.vars[i], "load")
					}
				}
				first, second := pl.l, pl.r
				if flip {
					first, second = pl.r, pl.l
				}
				u.Lock(first, "inv1")
				u.Lock(second, "inv2")
				u.Unlock(second, "inv2u")
				u.Unlock(first, "inv1u")
			}
		}
		prog := func(th *sim.Thread) {
			var hs []*sim.Thread
			for p := 0; p < pairs; p++ {
				hs = append(hs, th.Go(fmt.Sprintf("a%d", p), body(p, false, true), "sa"))
				hs = append(hs, th.Go(fmt.Sprintf("b%d", p), body(p, true, false), "sb"))
			}
			for _, h := range hs {
				th.Join(h, "j")
			}
		}
		return prog, opts
	}
}

// terminatingSeeds returns the first `want` seeds whose recorded run
// terminates, so detection sees complete traces.
func terminatingSeeds(t *testing.T, f sim.Factory, want int) []int64 {
	t.Helper()
	var seeds []int64
	for seed := int64(1); seed <= 300 && len(seeds) < want; seed++ {
		prog, opts := f()
		if out := sim.Run(prog, sim.NewRandomStrategy(seed), opts); out.Kind == sim.Terminated {
			seeds = append(seeds, seed)
		}
	}
	if len(seeds) < want {
		t.Fatalf("found %d terminating seeds, want %d", len(seeds), want)
	}
	return seeds
}

// normalizedReport marshals the analysis report after asserting the
// timings are populated and zeroing them (the only fields that cannot
// be byte-stable across runs).
func normalizedReport(t *testing.T, rep *core.Report) []byte {
	t.Helper()
	jr := report.FromCore(rep)
	if jr.Timings.CycleDetectNs <= 0 || jr.Timings.GenerateNs <= 0 {
		t.Fatalf("phase timings not populated: %+v", jr.Timings)
	}
	jr.Timings = report.JSONTimings{}
	buf, err := json.MarshalIndent(jr, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return buf
}

func TestAnalyzeTraceParallelDeterminism(t *testing.T) {
	type tcase struct {
		name string
		tr   *trace.Trace
	}
	var cases []tcase

	vf := valueFlowFactory(4, 25)
	for _, seed := range terminatingSeeds(t, vf, 3) {
		cases = append(cases, tcase{
			name: fmt.Sprintf("valueflow/seed%d", seed),
			tr:   core.Record(vf, seed, 0),
		})
	}
	for _, name := range []string{"Figure4", "Figure2", "cache4j"} {
		wl, ok := workloads.ByName(name)
		if !ok {
			t.Fatalf("workload %q not registered", name)
		}
		seed := terminatingSeeds(t, wl.New, 1)[0]
		cases = append(cases, tcase{
			name: fmt.Sprintf("%s/seed%d", name, seed),
			tr:   core.Record(wl.New, seed, 0),
		})
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.Config{DataDependency: true, Parallelism: 1}
			want := normalizedReport(t, core.AnalyzeTrace(tc.tr, cfg))
			for _, par := range []int{2, 4, 8} {
				cfg.Parallelism = par
				got := normalizedReport(t, core.AnalyzeTrace(tc.tr, cfg))
				if !bytes.Equal(want, got) {
					t.Fatalf("Parallelism=%d report differs from sequential:\n--- p1 ---\n%s\n--- p%d ---\n%s",
						par, want, par, got)
				}
			}
		})
	}
}
