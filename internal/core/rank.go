package core

import (
	"math"
	"sort"
	"time"
)

// Rank orders the report's defects for human triage, implementing the
// ranking the paper proposes in Section 4.4: instead of discarding
// Pruner/Generator verdicts outright, defects are sorted so that
// automatically confirmed deadlocks come first, unknowns follow (those
// with smaller synchronization dependency graphs first — they take the
// least effort to comprehend manually), and provable false positives
// sink to the bottom (Generator refutations above Pruner refutations,
// since the latter rest on the stronger ordering evidence).
//
// The returned slice is freshly allocated; the report is not modified.
func (r *Report) Rank() []*DefectReport {
	out := append([]*DefectReport(nil), r.Defects...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		ca, cb := classRank(a.Class), classRank(b.Class)
		if ca != cb {
			return ca < cb
		}
		if a.Class == Unknown {
			ga, gb := minGs(a), minGs(b)
			if ga != gb {
				return ga < gb
			}
		}
		return a.Signature < b.Signature
	})
	return out
}

// classRank orders classifications by triage priority.
func classRank(c Classification) int {
	switch c {
	case Confirmed:
		return 0
	case Unknown:
		return 1
	case FalseByData:
		return 2
	case FalseByGenerator:
		return 3
	default: // FalseByPruner
		return 4
	}
}

// minGs is the smallest Gs across a defect's unrefuted cycles; defects
// without any graph sort last among unknowns.
func minGs(d *DefectReport) int {
	best := int(^uint(0) >> 1)
	for _, cr := range d.Cycles {
		if cr.GsSize > 0 && cr.GsSize < best {
			best = cr.GsSize
		}
	}
	return best
}

// ScoreDefect is the corpus-level triage score of one defect record:
// the cross-run counterpart of Report.Rank, which only orders the
// cycles of a single analysis. A confirmed reproduction dominates
// everything (the paper's replay oracle is the strongest evidence
// available), occurrence count contributes logarithmically (a defect
// seen in 100 runs is more urgent than one seen twice, but not 50x),
// and recency adds a decaying bonus with a one-week half-life so
// actively-recurring defects surface above historical ones.
func ScoreDefect(confirmed bool, occurrences int, lastSeen, now time.Time) float64 {
	var score float64
	if confirmed {
		score += 1000
	}
	if occurrences > 0 {
		score += 10 * math.Log2(1+float64(occurrences))
	}
	if !lastSeen.IsZero() {
		ageDays := now.Sub(lastSeen).Hours() / 24
		if ageDays < 0 {
			ageDays = 0
		}
		score += 5 * math.Exp2(-ageDays/7)
	}
	return score
}
