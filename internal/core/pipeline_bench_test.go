package core

import (
	"fmt"
	"runtime"
	"testing"

	"wolf/internal/trace"
	"wolf/internal/vclock"
	"wolf/sim"
)

// benchPipelineTrace records a terminating run of a synthetic workload
// with `pairs` independent lock inversions. Each pair contributes one
// potential deadlock cycle whose threads drag `iters` iterations of
// nested noise acquisitions and cross-thread value flow in their
// prefixes, so the Generator faces long D'σ slices, many type-C
// candidates and many loads with foreign producers — the shapes the
// analysis index exists for.
func benchPipelineTrace(b testing.TB, pairs, iters int) *trace.Trace {
	b.Helper()
	type pairLocks struct {
		a, l, r, n1, n2 *sim.Lock
		vars            []*sim.Var
	}
	pls := make([]*pairLocks, pairs)
	opts := sim.Options{MaxSteps: 10_000_000, Setup: func(w *sim.World) {
		for p := 0; p < pairs; p++ {
			pl := &pairLocks{
				l:  w.NewLock(fmt.Sprintf("A%d", p)),
				r:  w.NewLock(fmt.Sprintf("B%d", p)),
				n1: w.NewLock(fmt.Sprintf("n1_%d", p)),
				n2: w.NewLock(fmt.Sprintf("n2_%d", p)),
			}
			for i := 0; i < iters; i++ {
				pl.vars = append(pl.vars, w.NewVar(fmt.Sprintf("v%d_%d", p, i), 0))
			}
			pls[p] = pl
		}
	}}
	body := func(p int, first, second func(*pairLocks) *sim.Lock, writer bool) sim.Program {
		return func(u *sim.Thread) {
			pl := pls[p]
			for i := 0; i < iters; i++ {
				u.Lock(pl.n1, "noise1")
				u.Lock(pl.n2, "noise2")
				u.Unlock(pl.n2, "noise2u")
				u.Unlock(pl.n1, "noise1u")
				if writer {
					u.Store(pl.vars[i], i, "store")
				} else {
					u.Load(pl.vars[i], "load")
				}
			}
			u.Lock(first(pl), "inv1")
			u.Lock(second(pl), "inv2")
			u.Unlock(second(pl), "inv2u")
			u.Unlock(first(pl), "inv1u")
		}
	}
	prog := func(th *sim.Thread) {
		var hs []*sim.Thread
		for p := 0; p < pairs; p++ {
			p := p
			hs = append(hs, th.Go(fmt.Sprintf("a%d", p),
				body(p, func(pl *pairLocks) *sim.Lock { return pl.l },
					func(pl *pairLocks) *sim.Lock { return pl.r }, true), "sa"))
			hs = append(hs, th.Go(fmt.Sprintf("b%d", p),
				body(p, func(pl *pairLocks) *sim.Lock { return pl.r },
					func(pl *pairLocks) *sim.Lock { return pl.l }, false), "sb"))
		}
		for _, h := range hs {
			th.Join(h, "j")
		}
	}
	vt := vclock.NewTracker()
	rec := trace.NewRecorder(vt)
	opts.Listeners = []sim.Listener{vt, rec}
	out := sim.Run(prog, sim.FirstEnabled{}, opts)
	if out.Kind != sim.Terminated {
		b.Fatalf("outcome %v", out)
	}
	return rec.Finish(0)
}

// BenchmarkAnalyzeTrace measures the whole offline pipeline (cycle
// detection → Pruner → Generator, value-flow extension on) over
// synthetic traces, sequentially and at full parallelism. CI runs this
// suite with -benchtime=1x and converts the output into
// BENCH_pipeline.json; EXPERIMENTS.md tracks before/after numbers.
func BenchmarkAnalyzeTrace(b *testing.B) {
	sizes := []struct {
		name         string
		pairs, iters int
	}{
		{"small", 2, 40},
		{"large", 8, 400},
	}
	pars := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		pars = append(pars, n)
	}
	for _, sz := range sizes {
		tr := benchPipelineTrace(b, sz.pairs, sz.iters)
		for _, par := range pars {
			name := fmt.Sprintf("%s/p%d", sz.name, par)
			b.Run(name, func(b *testing.B) {
				cfg := Config{DataDependency: true, Parallelism: par}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rep := AnalyzeTrace(tr, cfg)
					if len(rep.Cycles) != sz.pairs {
						b.Fatalf("cycles = %d, want %d", len(rep.Cycles), sz.pairs)
					}
				}
			})
		}
	}
}
