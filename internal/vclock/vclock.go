// Package vclock implements the timestamp machinery of WOLF's Extended
// Dynamic Cycle Detector (Algorithm 1 of the paper).
//
// Every thread t carries a scalar timestamp τ(t), incremented whenever t
// starts or joins another thread, and a vector clock V(t) of ordered
// pairs (S, J), one per thread t':
//
//   - S: operations of t' with timestamp < S always complete before t
//     begins execution — they can never overlap with t.
//   - J: operations of t with timestamp >= J always execute after t' has
//     joined (terminated) — they can never overlap with t'.
//
// ⊥ (not started / never joined) is represented as 0; real timestamps
// start at 1.
package vclock

import (
	"fmt"

	"wolf/sim"
)

// Bottom is the ⊥ timestamp.
const Bottom = 0

// SJ is one ordered pair of a thread's vector clock.
type SJ struct {
	// S is the start boundary: operations of the other thread with
	// timestamp < S precede this thread's entire execution.
	S int
	// J is the join boundary: operations of this thread with timestamp
	// >= J follow the other thread's entire execution. Bottom when the
	// other thread has not joined.
	J int
}

// String formats the pair, rendering Bottom as ⊥.
func (p SJ) String() string {
	f := func(v int) string {
		if v == Bottom {
			return "⊥"
		}
		return fmt.Sprint(v)
	}
	return "(" + f(p.S) + "," + f(p.J) + ")"
}

// Vector is one thread's vector clock, indexed by sim.ThreadID. Missing
// entries are (⊥, ⊥).
type Vector []SJ

// At returns the pair for thread id, defaulting to (⊥, ⊥).
func (v Vector) At(id sim.ThreadID) SJ {
	if int(id) < len(v) {
		return v[id]
	}
	return SJ{}
}

// grown returns v extended to hold index id.
func (v Vector) grown(id sim.ThreadID) Vector {
	for int(id) >= len(v) {
		v = append(v, SJ{})
	}
	return v
}

// clone returns a copy of v sized to at least n entries.
func (v Vector) clone(n int) Vector {
	out := make(Vector, max(len(v), n))
	copy(out, v)
	return out
}

// Tracker maintains τ and V for every thread of one run. It implements
// sim.Listener; install it before any listener that reads timestamps so
// each event is stamped before consumers observe it.
type Tracker struct {
	tau    []int
	clocks []Vector
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{} }

// Tau returns τ(id), Bottom if the thread has not started.
func (tr *Tracker) Tau(id sim.ThreadID) int {
	if int(id) < len(tr.tau) {
		return tr.tau[id]
	}
	return Bottom
}

// Clock returns V(id). The returned vector is live; do not modify it.
func (tr *Tracker) Clock(id sim.ThreadID) Vector {
	if int(id) < len(tr.clocks) {
		return tr.clocks[id]
	}
	return nil
}

// Snapshot returns a deep copy of every thread's final vector clock,
// indexed by thread ID, for use by the Pruner after the run.
func (tr *Tracker) Snapshot() []Vector {
	out := make([]Vector, len(tr.clocks))
	for i, v := range tr.clocks {
		out[i] = v.clone(len(tr.clocks))
	}
	return out
}

// Taus returns a copy of every thread's final scalar timestamp.
func (tr *Tracker) Taus() []int {
	out := make([]int, len(tr.tau))
	copy(out, tr.tau)
	return out
}

// ensure sizes internal state for thread id.
func (tr *Tracker) ensure(id sim.ThreadID) {
	for int(id) >= len(tr.tau) {
		tr.tau = append(tr.tau, Bottom)
		tr.clocks = append(tr.clocks, nil)
	}
}

// OnEvent applies Algorithm 1's timestamp updates.
func (tr *Tracker) OnEvent(ev sim.Event) {
	t := ev.Thread.ID()
	tr.ensure(t)
	// Line 11: a thread's timestamp becomes 1 when it first executes.
	if tr.tau[t] == Bottom {
		tr.tau[t] = 1
	}
	switch ev.Op.Kind {
	case sim.OpStart:
		c := ev.Op.Child.ID()
		tr.ensure(c)
		// Lines 14-21.
		tr.tau[t]++
		tr.tau[c] = 1
		n := max(int(t), int(c)) + 1
		vc := tr.clocks[c].clone(n)
		vp := tr.clocks[t]
		for i := range vc {
			id := sim.ThreadID(i)
			// Threads already joined relative to the parent can never
			// overlap with the child either.
			if vp.At(id).J != Bottom {
				vc[i].J = tr.tau[c]
			}
			if id == t {
				vc[i].S = tr.tau[t]
			} else {
				vc[i].S = vp.At(id).S
			}
		}
		tr.clocks[c] = vc
	case sim.OpJoin:
		c := ev.Op.Target.ID()
		tr.ensure(c)
		// Lines 23-28.
		tr.tau[t]++
		n := max(int(t), int(c)) + 1
		vp := tr.clocks[t].clone(n)
		vc := tr.clocks[c]
		for i := range vp {
			id := sim.ThreadID(i)
			if id == c || (vc.At(id).J != Bottom && vp[i].J == Bottom) {
				vp[i].J = tr.tau[t]
			}
		}
		tr.clocks[t] = vp
	}
}

// NeverOverlap applies the Pruner's two checks (Algorithm 2) to a pair of
// lock acquisitions: acquisition a by thread ta at timestamp tauA, and
// acquisition b by thread tb at timestamp tauB, given ta's final vector
// clock va. It reports true when the two acquisitions provably cannot
// overlap in any schedule of the observed trace:
//
//   - tb's acquisition always completes before ta starts
//     (va(tb).S > tauB), or
//   - tb always terminates before ta's acquisition
//     (va(tb).J != ⊥ and va(tb).J <= tauA).
func NeverOverlap(va Vector, tb sim.ThreadID, tauA, tauB int) bool {
	p := va.At(tb)
	if p.S != Bottom && p.S > tauB {
		return true
	}
	if p.J != Bottom && p.J <= tauA {
		return true
	}
	return false
}
