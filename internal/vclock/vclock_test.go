package vclock

import (
	"testing"

	"wolf/sim"
)

// runFig4 executes the paper's Figure 4 program (threads t1, t2, t3;
// t1 starts t2, t2 starts t3) under the given strategy and returns the
// tracker and the world.
func runFig4(t *testing.T, strategy sim.Strategy) (*Tracker, *sim.World) {
	t.Helper()
	var l1, l2, l3 *sim.Lock
	tr := NewTracker()
	opts := sim.Options{
		Setup: func(w *sim.World) {
			l1, l2, l3 = w.NewLock("l1"), w.NewLock("l2"), w.NewLock("l3")
		},
		Listeners: []sim.Listener{tr},
	}
	t3body := func(u *sim.Thread) {
		u.Lock(l3, "31")
		u.Lock(l2, "32")
		u.Lock(l1, "33")
		u.Unlock(l1, "34")
		u.Unlock(l2, "35")
		u.Unlock(l3, "36")
	}
	t2body := func(u *sim.Thread) {
		u.Go("t3", t3body, "21")
	}
	prog := func(th *sim.Thread) {
		th.Lock(l1, "11")
		th.Lock(l2, "12")
		th.Unlock(l2, "13")
		th.Unlock(l1, "14")
		th.Go("t2", t2body, "15")
		th.Lock(l3, "16")
		th.Unlock(l3, "17")
		th.Lock(l1, "18")
		th.Lock(l2, "19")
		th.Unlock(l2, "20")
		th.Unlock(l1, "21")
	}
	out := sim.Run(prog, strategy, opts)
	if out.Kind != sim.Terminated && out.Kind != sim.Deadlocked {
		t.Fatalf("outcome = %v", out)
	}
	return tr, out.World
}

// TestFigure6Timestamps reproduces the vector clock values the paper
// derives in Figure 6: V1 = <⊥,⊥,⊥>, V2 = <(2,⊥),⊥,⊥>,
// V3 = <(2,⊥),(2,⊥),⊥>.
func TestFigure6Timestamps(t *testing.T) {
	tr, w := runFig4(t, sim.FirstEnabled{})
	t1 := w.ThreadByName("main")
	t2 := w.ThreadByName("main/t2.0")
	t3 := w.ThreadByName("main/t2.0/t3.0")
	if t1 == nil || t2 == nil || t3 == nil {
		t.Fatal("threads not found")
	}
	if got := tr.Tau(t1.ID()); got != 2 {
		t.Errorf("τ(t1) = %d, want 2", got)
	}
	if got := tr.Tau(t2.ID()); got != 2 {
		t.Errorf("τ(t2) = %d, want 2", got)
	}
	if got := tr.Tau(t3.ID()); got != 1 {
		t.Errorf("τ(t3) = %d, want 1", got)
	}
	v1, v2, v3 := tr.Clock(t1.ID()), tr.Clock(t2.ID()), tr.Clock(t3.ID())
	for id := sim.ThreadID(0); int(id) < 3; id++ {
		if p := v1.At(id); p != (SJ{}) {
			t.Errorf("V1(%d) = %v, want (⊥,⊥)", id, p)
		}
	}
	if p := v2.At(t1.ID()); p != (SJ{S: 2}) {
		t.Errorf("V2(t1) = %v, want (2,⊥)", p)
	}
	if p := v2.At(t3.ID()); p != (SJ{}) {
		t.Errorf("V2(t3) = %v, want (⊥,⊥)", p)
	}
	if p := v3.At(t1.ID()); p != (SJ{S: 2}) {
		t.Errorf("V3(t1) = %v, want (2,⊥)", p)
	}
	if p := v3.At(t2.ID()); p != (SJ{S: 2}) {
		t.Errorf("V3(t2) = %v, want (2,⊥)", p)
	}
}

// TestFigure6AcrossSchedules: the final clocks are schedule-independent
// for Figure 4's program because start edges alone determine them.
func TestFigure6AcrossSchedules(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		tr, w := runFig4(t, sim.NewRandomStrategy(seed))
		t1 := w.ThreadByName("main")
		t3 := w.ThreadByName("main/t2.0/t3.0")
		if t3 == nil {
			continue // deadlocked before t3 started
		}
		if p := tr.Clock(t3.ID()).At(t1.ID()); p != (SJ{S: 2}) {
			t.Errorf("seed %d: V3(t1) = %v, want (2,⊥)", seed, p)
		}
	}
}

// TestJoinSetsJ: after p joins c, Vp(c).J records p's timestamp at the
// join, so later operations of p can be ordered after all of c.
func TestJoinSetsJ(t *testing.T) {
	tr := NewTracker()
	var cID sim.ThreadID
	prog := func(th *sim.Thread) {
		h := th.Go("c", func(u *sim.Thread) { u.Yield("c1") }, "m1")
		cID = h.ID()
		th.Join(h, "m2")
		th.Yield("m3")
	}
	out := sim.Run(prog, sim.NewRandomStrategy(1), sim.Options{Listeners: []sim.Listener{tr}})
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
	mainID := out.World.ThreadByName("main").ID()
	// main: τ=1 initially, 2 after start, 3 after join.
	if got := tr.Tau(mainID); got != 3 {
		t.Errorf("τ(main) = %d, want 3", got)
	}
	if p := tr.Clock(mainID).At(cID); p.J != 3 {
		t.Errorf("Vmain(c).J = %d, want 3", p.J)
	}
}

// TestTransitiveJoin: if p joins c, then p starts d, d can never overlap
// with c (the paper's transitivity rule in lines 15-17 of Algorithm 1).
func TestTransitiveJoin(t *testing.T) {
	tr := NewTracker()
	var cID, dID sim.ThreadID
	prog := func(th *sim.Thread) {
		c := th.Go("c", func(u *sim.Thread) { u.Yield("c1") }, "m1")
		cID = c.ID()
		th.Join(c, "m2")
		d := th.Go("d", func(u *sim.Thread) { u.Yield("d1") }, "m3")
		dID = d.ID()
		th.Join(d, "m4")
	}
	out := sim.Run(prog, sim.NewRandomStrategy(1), sim.Options{Listeners: []sim.Listener{tr}})
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
	// d inherits a J boundary for c: everything d does (τ >= J) is after
	// c joined.
	if p := tr.Clock(dID).At(cID); p.J == Bottom {
		t.Errorf("Vd(c).J = ⊥, want set (transitive join)")
	} else if p.J != 1 {
		t.Errorf("Vd(c).J = %d, want 1 (τd at creation)", p.J)
	}
}

// TestTransitiveJoinViaSibling: t joins c inside another thread, then the
// *parent* of that thread must not inherit the boundary, but a child
// started by the joiner must.
func TestTransitiveJoinViaSibling(t *testing.T) {
	tr := NewTracker()
	var cID, gID sim.ThreadID
	prog := func(th *sim.Thread) {
		c := th.Go("c", func(u *sim.Thread) { u.Yield("c1") }, "m1")
		cID = c.ID()
		j := th.Go("joiner", func(u *sim.Thread) {
			u.Join(c, "j1")
			g := u.Go("g", func(v *sim.Thread) { v.Yield("g1") }, "j2")
			gID = g.ID()
			u.Join(g, "j3")
		}, "m2")
		th.Join(j, "m3")
	}
	out := sim.Run(prog, sim.NewRandomStrategy(2), sim.Options{Listeners: []sim.Listener{tr}})
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
	if p := tr.Clock(gID).At(cID); p.J == Bottom {
		t.Error("Vg(c).J = ⊥, want set: g was started after its parent joined c")
	}
	mainID := out.World.ThreadByName("main").ID()
	// main joined "joiner", and joiner had joined c, so transitively main
	// acquires c's J boundary at the join (Algorithm 1 line 25).
	if p := tr.Clock(mainID).At(cID); p.J == Bottom {
		t.Error("Vmain(c).J = ⊥, want set via transitive join")
	}
}

// TestNeverOverlap covers both Pruner conditions directly.
func TestNeverOverlap(t *testing.T) {
	// Condition 1: b's acquisition (tauB=1) precedes a's thread start
	// (S=2).
	va := Vector{0: {S: 2}}
	if !NeverOverlap(va, 0, 1, 1) {
		t.Error("S condition: want never-overlap")
	}
	if NeverOverlap(va, 0, 1, 2) {
		t.Error("S condition with tauB=2: want possible overlap")
	}
	// Condition 2: b joined before a's acquisition (J=3 <= tauA).
	va = Vector{0: {J: 3}}
	if !NeverOverlap(va, 0, 3, 1) {
		t.Error("J condition: want never-overlap")
	}
	if NeverOverlap(va, 0, 2, 1) {
		t.Error("J condition with tauA=2: want possible overlap")
	}
	// Bottom clock: nothing is provable.
	if NeverOverlap(Vector{}, 0, 1, 1) {
		t.Error("bottom clock: want possible overlap")
	}
}

// TestSnapshotIsDeepCopy: mutating a snapshot does not affect the tracker.
func TestSnapshotIsDeepCopy(t *testing.T) {
	tr := NewTracker()
	prog := func(th *sim.Thread) {
		h := th.Go("c", func(u *sim.Thread) {}, "m1")
		th.Join(h, "m2")
	}
	sim.Run(prog, sim.NewRandomStrategy(1), sim.Options{Listeners: []sim.Listener{tr}})
	snap := tr.Snapshot()
	if len(snap) < 2 {
		t.Fatalf("snapshot has %d clocks, want >= 2", len(snap))
	}
	snap[0][1] = SJ{S: 99, J: 99}
	if tr.Clock(0).At(1) == (SJ{S: 99, J: 99}) {
		t.Error("snapshot aliases tracker state")
	}
}
