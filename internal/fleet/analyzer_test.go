package fleet

// Analyzer-side unit tests against a scripted fake coordinator: the
// happy path delivers a report plus corpus summaries, and a renew 409
// (lease revoked mid-analysis) abandons the run without a completion —
// the invariant that keeps a reassigned job from being terminal-failed
// by its previous owner.

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"wolf/internal/core"
	"wolf/internal/store"
	"wolf/internal/trace"
	"wolf/internal/workloads"
)

// fig4B64 records a Figure4 detection trace and returns its base64
// WTRC encoding plus content hash.
func fig4B64(t *testing.T) (string, string) {
	t.Helper()
	w, ok := workloads.ByName("Figure4")
	if !ok {
		t.Fatal("Figure4 not registered")
	}
	seed, ok := workloads.FindTerminatingSeed(w.New, 300)
	if !ok {
		t.Fatal("no terminating seed")
	}
	hash, data, err := store.HashTrace(core.Record(w.New, seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(data), hash
}

// fakeCoordinator scripts the fleet protocol: it grants one job and
// records what the analyzer sends back.
type fakeCoordinator struct {
	ts *httptest.Server

	leaseTTL    time.Duration
	renewStatus int // status for /v1/work/renew (200 or 409)
	work        WorkView

	granted   atomic.Bool
	completes chan CompleteRequest
	renewed   atomic.Int64
}

func newFakeCoordinator(t *testing.T, work WorkView, leaseTTL time.Duration, renewStatus int) *fakeCoordinator {
	t.Helper()
	f := &fakeCoordinator{
		leaseTTL: leaseTTL, renewStatus: renewStatus, work: work,
		completes: make(chan CompleteRequest, 4),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(RegisterView{
			ID: "n-0001", Name: "fake",
			HeartbeatMillis:        ToMillis(50 * time.Millisecond),
			HeartbeatTimeoutMillis: ToMillis(time.Second),
			LeaseTTLMillis:         ToMillis(leaseTTL),
		})
	})
	mux.HandleFunc("POST /v1/nodes/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/work/pull", func(w http.ResponseWriter, r *http.Request) {
		if f.granted.Swap(true) {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		work := f.work
		work.LeaseTTLMillis = ToMillis(f.leaseTTL)
		work.Attempts = 1
		json.NewEncoder(w).Encode(work)
	})
	mux.HandleFunc("POST /v1/work/renew", func(w http.ResponseWriter, r *http.Request) {
		f.renewed.Add(1)
		if f.renewStatus != http.StatusOK {
			w.WriteHeader(f.renewStatus)
			return
		}
		json.NewEncoder(w).Encode(RenewView{Job: f.work.Job, LeaseTTLMillis: ToMillis(f.leaseTTL)})
	})
	mux.HandleFunc("POST /v1/work/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		json.NewDecoder(r.Body).Decode(&req)
		f.completes <- req
		json.NewEncoder(w).Encode(CompleteView{Job: req.Job, Result: "accepted"})
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// runAnalyzer drives one analyzer against the fake until cleanup.
func runAnalyzer(t *testing.T, cfg AnalyzerConfig) *Analyzer {
	t.Helper()
	a := NewAnalyzer(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); a.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return a
}

// TestAnalyzerDeliversResult is the analyzer happy path: pull a
// shipped trace, analyze it, and deliver a report with corpus
// summaries for the known Figure 4 deadlock.
func TestAnalyzerDeliversResult(t *testing.T) {
	b64, hash := fig4B64(t)
	fc := newFakeCoordinator(t, WorkView{
		Job: "j-000001", Source: "upload", TraceB64: b64, TraceHash: hash,
	}, time.Second, http.StatusOK)
	runAnalyzer(t, AnalyzerConfig{
		Coordinator: fc.ts.URL, Name: "t", Poll: 10 * time.Millisecond,
		JobTimeout: 15 * time.Second,
	})

	select {
	case req := <-fc.completes:
		if !req.OK || req.Job != "j-000001" || req.Node != "n-0001" {
			t.Fatalf("completion = %+v, want ok from n-0001 for j-000001", req)
		}
		if len(req.Summaries) == 0 {
			t.Fatal("completion carries no defect summaries for Figure 4")
		}
		if req.TraceHash != hash {
			t.Fatalf("completion hash = %s, want %s", req.TraceHash, hash)
		}
		if len(req.Report) == 0 {
			t.Fatal("completion carries no report")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("no completion delivered")
	}
}

// TestAnalyzerAbandonsOnLeaseLost pins the reassignment invariant: a
// renew 409 cancels the running analysis and the analyzer sends NO
// completion — the job now belongs to another node.
func TestAnalyzerAbandonsOnLeaseLost(t *testing.T) {
	b64, hash := fig4B64(t)
	// Short lease so renewals start almost immediately; every renewal
	// answers 409.
	fc := newFakeCoordinator(t, WorkView{
		Job: "j-000001", Source: "upload", TraceB64: b64, TraceHash: hash,
	}, 30*time.Millisecond, http.StatusConflict)

	analyzing := make(chan struct{}, 1)
	runAnalyzer(t, AnalyzerConfig{
		Coordinator: fc.ts.URL, Name: "t", Poll: 10 * time.Millisecond,
		JobTimeout: 15 * time.Second,
		// Block until the renewal goroutine cancels the run, proving the
		// cancellation (not completion of the work) ends the analysis.
		Analyze: func(ctx context.Context, tr *trace.Trace, cfg core.Config) (*core.Report, error) {
			analyzing <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})

	select {
	case <-analyzing:
	case <-time.After(15 * time.Second):
		t.Fatal("analysis never started")
	}
	// The renewal must fire, flip leaseLost, and the run must end with
	// no completion call.
	deadline := time.Now().Add(10 * time.Second)
	for fc.renewed.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if fc.renewed.Load() == 0 {
		t.Fatal("lease was never renewed")
	}
	select {
	case req := <-fc.completes:
		t.Fatalf("abandoned run still sent a completion: %+v", req)
	case <-time.After(300 * time.Millisecond):
	}
}
