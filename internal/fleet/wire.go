// Package fleet implements the distributed side of wolfd: the wire
// protocol between a coordinator (wolfd -role=coordinator) and its
// analyzer nodes (wolfd -role=analyzer -coordinator=URL), and the
// analyzer itself.
//
// Protocol (all JSON over the coordinator's existing HTTP surface):
//
//	POST /v1/nodes                 register → node ID + fleet timings
//	POST /v1/nodes/{id}/heartbeat  liveness; 404 once the node is lost
//	POST /v1/work/pull             lease one job (204 when idle)
//	POST /v1/work/renew            extend a lease; 409 once it is gone
//	POST /v1/work/complete         deliver a result (first result wins)
//
// Robustness model: work is handed out under time-bounded leases the
// analyzer must renew. A missed heartbeat marks the node lost and its
// jobs are reassigned; an expired lease reassigns just that job. Each
// job carries a bounded delivery budget — when reassignment exhausts
// it the coordinator terminal-fails the job with reason
// "reassign-exhausted". A lease renewed too many times marks its
// holder a straggler and the job is re-offered to a second node;
// whichever result arrives first wins, keyed on the job (and the
// defect corpus dedupes by canonical fingerprint regardless). All
// durations on the wire are integer milliseconds; trace blobs are
// base64-encoded WTRC.
package fleet

import (
	"encoding/json"
	"time"

	"wolf/internal/store"
)

// RegisterRequest is the body of POST /v1/nodes.
type RegisterRequest struct {
	// Name is the analyzer's self-chosen label (hostname by default);
	// the coordinator assigns the authoritative ID.
	Name string `json:"name"`
}

// RegisterView is the coordinator's reply: the assigned node ID plus
// the fleet timings the analyzer must honor.
type RegisterView struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// HeartbeatMillis is how often the analyzer should heartbeat;
	// HeartbeatTimeoutMillis is how long silence lasts before the
	// coordinator declares the node lost.
	HeartbeatMillis        int64 `json:"heartbeat_millis"`
	HeartbeatTimeoutMillis int64 `json:"heartbeat_timeout_millis"`
	// LeaseTTLMillis is the lease duration on pulled work; renew well
	// before it elapses.
	LeaseTTLMillis int64 `json:"lease_ttl_millis"`
}

// NodeView is one known analyzer in GET /v1/nodes and wolfctl nodes.
type NodeView struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"` // "alive" or "lost"
	// Leased is the number of jobs currently leased to the node.
	Leased        int    `json:"leased"`
	Completed     int64  `json:"completed"`
	Failed        int64  `json:"failed"`
	Registered    string `json:"registered"`
	LastHeartbeat string `json:"last_heartbeat,omitempty"`
}

// PullRequest is the body of POST /v1/work/pull.
type PullRequest struct {
	Node string `json:"node"`
}

// WorkView is one leased job. Exactly one of TraceB64 or Workload is
// set: either the coordinator ships the recorded trace, or the
// analyzer records the named workload itself.
type WorkView struct {
	Job    string `json:"job"`
	Source string `json:"source"`
	// TraceID is the job's causal identity (W3C trace ID), propagated
	// so analyzer-side spans and logs correlate with the coordinator's.
	TraceID string `json:"trace_id,omitempty"`
	// TraceB64 is the base64-encoded WTRC blob to analyze; TraceHash is
	// its content address in the coordinator's corpus.
	TraceB64  string `json:"trace_b64,omitempty"`
	TraceHash string `json:"trace_hash,omitempty"`
	// Workload names a registry workload the analyzer records itself;
	// Seed pins the detection schedule (0 = search, bounded by
	// SeedTries).
	Workload  string `json:"workload,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	SeedTries int    `json:"seed_tries,omitempty"`
	// Attempts is how many times the job has been delivered, this
	// delivery included.
	Attempts       int   `json:"attempts"`
	LeaseTTLMillis int64 `json:"lease_ttl_millis"`
}

// RenewRequest is the body of POST /v1/work/renew.
type RenewRequest struct {
	Node string `json:"node"`
	Job  string `json:"job"`
}

// RenewView confirms an extended lease.
type RenewView struct {
	Job            string `json:"job"`
	LeaseTTLMillis int64  `json:"lease_ttl_millis"`
	Renewals       int    `json:"renewals"`
}

// CompleteRequest is the body of POST /v1/work/complete: one finished
// analysis, successful or not.
type CompleteRequest struct {
	Node string `json:"node"`
	Job  string `json:"job"`
	OK   bool   `json:"ok"`
	// Error describes the failure when OK is false.
	Error string `json:"error,omitempty"`
	// Report is the wire-format analysis report (report.JSONReport) of
	// a successful run, served verbatim by the coordinator's report
	// endpoint.
	Report json.RawMessage `json:"report,omitempty"`
	// Summaries are the per-fingerprint defect summaries the
	// coordinator folds into its corpus (store.Summarize output).
	Summaries []store.CycleSummary `json:"summaries,omitempty"`
	// TraceB64 carries the analyzed trace's WTRC encoding when the
	// analyzer recorded it itself (workload jobs), so the corpus holds
	// what was analyzed; TraceHash is its content address.
	TraceB64  string `json:"trace_b64,omitempty"`
	TraceHash string `json:"trace_hash,omitempty"`
}

// CompleteView is the coordinator's verdict on a delivered result.
type CompleteView struct {
	Job string `json:"job"`
	// Result is "accepted" for the winning result, "duplicate" when the
	// job already reached a terminal state (first result won).
	Result string `json:"result"`
}

// Millis converts a wire millisecond count to a duration.
func Millis(ms int64) time.Duration { return time.Duration(ms) * time.Millisecond }

// ToMillis converts a duration to wire milliseconds.
func ToMillis(d time.Duration) int64 { return int64(d / time.Millisecond) }
