package fleet

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"

	"wolf/internal/core"
	"wolf/internal/httpx"
	"wolf/internal/obs"
	"wolf/internal/report"
	"wolf/internal/store"
	"wolf/internal/trace"
	"wolf/internal/workloads"
)

// AnalyzerConfig controls one analyzer node.
type AnalyzerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Name is the node's self-chosen label (default: hostname).
	Name string
	// Poll is the idle sleep between pulls when the coordinator has no
	// work (default 500ms).
	Poll time.Duration
	// JobTimeout cancels an analysis that runs longer (default 30s) —
	// the local bound; the coordinator's lease is the distributed one.
	JobTimeout time.Duration
	// Analysis configures the offline pipeline.
	Analysis core.Config
	// Analyze overrides the analysis function (tests); default
	// core.AnalyzeTraceCtx.
	Analyze func(ctx context.Context, tr *trace.Trace, cfg core.Config) (*core.Report, error)
	// SeedTries bounds the terminating-seed search for workload jobs
	// when the coordinator does not send its own bound (default 300).
	SeedTries int
	// Logger receives lifecycle logs; silent when nil.
	Logger *slog.Logger
	// Client is the retrying HTTP client; a default with RetryConnect
	// (the fleet protocol tolerates duplicated requests) is built when
	// nil.
	Client *httpx.Client
}

func (c *AnalyzerConfig) fill() {
	if c.Poll <= 0 {
		c.Poll = 500 * time.Millisecond
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 30 * time.Second
	}
	if c.Analyze == nil {
		c.Analyze = core.AnalyzeTraceCtx
	}
	if c.SeedTries <= 0 {
		c.SeedTries = 300
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Client == nil {
		// Every fleet request is safe to duplicate: registration and
		// heartbeats are idempotent, pull grants are lease-tracked, and
		// completion is first-result-wins — so transport-error retry is
		// on.
		c.Client = &httpx.Client{RetryConnect: true}
	}
}

// Analyzer is one fleet worker: it registers with the coordinator,
// heartbeats, pulls leased work, renews leases while analyzing, and
// delivers results. Create with NewAnalyzer, drive with Run.
type Analyzer struct {
	cfg AnalyzerConfig

	// id is the coordinator-assigned node identity; timings come from
	// the registration reply. Written by register, read by the loops.
	id               atomic.Value // string
	heartbeatEvery   time.Duration
	heartbeatTimeout time.Duration
	leaseTTL         time.Duration

	completed atomic.Int64
	failed    atomic.Int64
	abandoned atomic.Int64
	started   time.Time
}

// NewAnalyzer builds an analyzer for the given coordinator.
func NewAnalyzer(cfg AnalyzerConfig) *Analyzer {
	cfg.fill()
	a := &Analyzer{cfg: cfg, started: time.Now()}
	a.id.Store("")
	return a
}

// ID returns the coordinator-assigned node ID (empty before the first
// successful registration).
func (a *Analyzer) ID() string { return a.id.Load().(string) }

// url joins a path onto the coordinator base.
func (a *Analyzer) url(path string) string { return a.cfg.Coordinator + path }

// postJSON posts v and decodes the response body into out (when the
// status is 2xx and out is non-nil). The response status is always
// returned for protocol branching.
func (a *Analyzer) postJSON(path string, v, out any) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	resp, err := a.cfg.Client.Post(a.url(path), "application/json", body)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return resp.StatusCode, nil
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode, nil
}

// register announces the node and adopts the coordinator's timings. It
// keeps trying with exponential backoff + jitter until it succeeds or
// ctx ends — an analyzer started before its coordinator just waits.
func (a *Analyzer) register(ctx context.Context) error {
	delay := 100 * time.Millisecond
	for {
		var view RegisterView
		status, err := a.postJSON("/v1/nodes", RegisterRequest{Name: a.cfg.Name}, &view)
		if err == nil && status == http.StatusOK {
			a.id.Store(view.ID)
			a.heartbeatEvery = Millis(view.HeartbeatMillis)
			a.heartbeatTimeout = Millis(view.HeartbeatTimeoutMillis)
			a.leaseTTL = Millis(view.LeaseTTLMillis)
			a.cfg.Logger.Info("registered with coordinator",
				"node", view.ID, "coordinator", a.cfg.Coordinator,
				"heartbeat", a.heartbeatEvery, "lease_ttl", a.leaseTTL)
			return nil
		}
		if err != nil {
			a.cfg.Logger.Warn("registration failed, retrying", "err", err, "delay", delay)
		} else {
			a.cfg.Logger.Warn("registration rejected, retrying", "status", status, "delay", delay)
		}
		jittered := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(jittered):
		}
		if delay *= 2; delay > 5*time.Second {
			delay = 5 * time.Second
		}
	}
}

// Run registers and then works until ctx is cancelled. A 404 from any
// fleet endpoint means the coordinator no longer knows the node (it
// restarted, or declared this node lost); the analyzer re-registers
// under a fresh identity and carries on — that is the whole
// coordinator-restart survival story on this side.
func (a *Analyzer) Run(ctx context.Context) error {
	if err := a.register(ctx); err != nil {
		return err
	}
	hbCtx, stopHeartbeat := context.WithCancel(ctx)
	defer stopHeartbeat()
	go a.heartbeatLoop(hbCtx)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var work WorkView
		status, err := a.postJSON("/v1/work/pull", PullRequest{Node: a.ID()}, &work)
		switch {
		case err != nil:
			a.cfg.Logger.Warn("pull failed", "err", err)
			if !a.sleep(ctx, a.cfg.Poll) {
				return ctx.Err()
			}
		case status == http.StatusOK:
			a.runWork(ctx, work)
		case status == http.StatusNotFound:
			a.cfg.Logger.Warn("coordinator forgot this node; re-registering", "node", a.ID())
			if err := a.register(ctx); err != nil {
				return err
			}
		case status == http.StatusNoContent || status == http.StatusServiceUnavailable:
			if !a.sleep(ctx, a.cfg.Poll) {
				return ctx.Err()
			}
		default:
			a.cfg.Logger.Warn("unexpected pull status", "status", status)
			if !a.sleep(ctx, a.cfg.Poll) {
				return ctx.Err()
			}
		}
	}
}

// sleep waits d or until ctx ends; it reports whether ctx is still
// live.
func (a *Analyzer) sleep(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// heartbeatLoop announces liveness until ctx ends. Heartbeats are
// fire-and-forget: a 404 is left for the work loop to resolve via
// re-registration (pulls also count as liveness on the coordinator, so
// a busy analyzer never goes lost just because one heartbeat raced a
// re-registration).
func (a *Analyzer) heartbeatLoop(ctx context.Context) {
	every := a.heartbeatEvery
	if every <= 0 {
		every = time.Second
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			id := a.ID()
			if id == "" {
				continue
			}
			if status, err := a.postJSON("/v1/nodes/"+id+"/heartbeat", struct{}{}, nil); err != nil {
				a.cfg.Logger.Warn("heartbeat failed", "err", err)
			} else if status == http.StatusNotFound {
				a.cfg.Logger.Warn("heartbeat rejected: node unknown", "node", id)
			}
		}
	}
}

// materialize produces the trace for one work item: decode the shipped
// blob, or record the named workload locally. For recorded workloads
// the WTRC encoding and its content address are returned too, so the
// completion can ship the blob back to the corpus.
func (a *Analyzer) materialize(w WorkView) (tr *trace.Trace, wtrc []byte, hash string, err error) {
	if w.TraceB64 != "" {
		raw, err := base64.StdEncoding.DecodeString(w.TraceB64)
		if err != nil {
			return nil, nil, "", fmt.Errorf("bad trace payload: %w", err)
		}
		tr, err := trace.ReadBinary(bytes.NewReader(raw))
		if err != nil {
			return nil, nil, "", fmt.Errorf("bad trace payload: %w", err)
		}
		return tr, nil, w.TraceHash, nil
	}
	wl, ok := workloads.ByName(w.Workload)
	if !ok {
		return nil, nil, "", fmt.Errorf("unknown workload %q", w.Workload)
	}
	seed := w.Seed
	if seed == 0 {
		tries := w.SeedTries
		if tries <= 0 {
			tries = a.cfg.SeedTries
		}
		found, ok := workloads.FindTerminatingSeed(wl.New, tries)
		if !ok {
			return nil, nil, "", fmt.Errorf("no terminating detection seed found in %d tries", tries)
		}
		seed = found
	}
	tr = core.Record(wl.New, seed, 0)
	hash, wtrc, err = store.HashTrace(tr)
	if err != nil {
		return nil, nil, "", err
	}
	return tr, wtrc, hash, nil
}

// runWork analyzes one leased job, renewing the lease while the
// analysis runs. Losing the lease (renew 409: the coordinator
// reassigned or finished the job) cancels the analysis and abandons it
// silently — no completion is sent, so a cancelled run can never
// terminal-fail a job that now belongs to someone else.
func (a *Analyzer) runWork(ctx context.Context, w WorkView) {
	log := a.cfg.Logger.With("job", w.Job, "source", w.Source, "trace", w.TraceID)
	log.Info("job leased", "attempts", w.Attempts)

	ttl := Millis(w.LeaseTTLMillis)
	if ttl <= 0 {
		ttl = a.leaseTTL
	}
	runCtx, cancel := context.WithTimeout(ctx, a.cfg.JobTimeout)
	defer cancel()
	runCtx = obs.WithTrace(runCtx, w.TraceID, "")

	// Lease renewal runs beside the analysis; leaseLost flips when the
	// coordinator says the lease is gone.
	var leaseLost atomic.Bool
	renewDone := make(chan struct{})
	renewStop := make(chan struct{})
	go func() {
		defer close(renewDone)
		every := ttl / 3
		if every <= 0 {
			every = time.Second
		}
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-renewStop:
				return
			case <-tick.C:
				status, err := a.postJSON("/v1/work/renew", RenewRequest{Node: a.ID(), Job: w.Job}, nil)
				if err != nil {
					log.Warn("lease renewal failed", "err", err)
					continue
				}
				if status == http.StatusConflict || status == http.StatusNotFound {
					leaseLost.Store(true)
					cancel()
					return
				}
			}
		}
	}()
	stopRenewals := func() {
		close(renewStop)
		<-renewDone
	}

	tr, wtrc, hash, err := a.materialize(w)
	if err != nil {
		stopRenewals()
		a.complete(log, CompleteRequest{Node: a.ID(), Job: w.Job, Error: err.Error()})
		return
	}
	rep, err := a.cfg.Analyze(runCtx, tr, a.cfg.Analysis)
	stopRenewals()
	if leaseLost.Load() {
		// The job is someone else's now; drop the result on the floor.
		a.abandoned.Add(1)
		log.Warn("lease lost mid-analysis; result abandoned")
		return
	}
	if err != nil {
		msg := err.Error()
		if errors.Is(err, context.DeadlineExceeded) {
			msg = fmt.Sprintf("analysis timed out after %v", a.cfg.JobTimeout)
		}
		a.complete(log, CompleteRequest{Node: a.ID(), Job: w.Job, Error: msg})
		return
	}
	raw, err := json.Marshal(report.FromCore(rep))
	if err != nil {
		a.complete(log, CompleteRequest{Node: a.ID(), Job: w.Job, Error: "encode report: " + err.Error()})
		return
	}
	req := CompleteRequest{
		Node:      a.ID(),
		Job:       w.Job,
		OK:        true,
		Report:    raw,
		Summaries: store.Summarize(rep),
		TraceHash: hash,
	}
	if wtrc != nil {
		req.TraceB64 = base64.StdEncoding.EncodeToString(wtrc)
	}
	a.complete(log, req)
}

// complete delivers one result and logs the coordinator's verdict.
func (a *Analyzer) complete(log *slog.Logger, req CompleteRequest) {
	if req.OK {
		a.completed.Add(1)
	} else {
		a.failed.Add(1)
	}
	var view CompleteView
	status, err := a.postJSON("/v1/work/complete", req, &view)
	switch {
	case err != nil:
		log.Error("completion delivery failed", "err", err)
	case status == http.StatusOK && view.Result == "duplicate":
		log.Info("result was a duplicate; another node won")
	case status == http.StatusOK:
		log.Info("result delivered", "ok", req.OK)
	default:
		log.Warn("completion rejected", "status", status)
	}
}

// Handler is the analyzer's own small ops surface: /healthz reports
// role and node identity (so probes work on every fleet member),
// /version the build.
func (a *Analyzer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":      "ok",
			"role":        "analyzer",
			"node":        a.ID(),
			"name":        a.cfg.Name,
			"coordinator": a.cfg.Coordinator,
			"completed":   a.completed.Load(),
			"failed":      a.failed.Load(),
			"abandoned":   a.abandoned.Load(),
			"version":     obs.ReadBuildInfo().Version,
		})
	})
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(obs.ReadBuildInfo())
	})
	return mux
}
