package stream

import (
	"wolf/internal/detect"
	"wolf/internal/fingerprint"
	"wolf/internal/pruner"
	"wolf/internal/trace"
	"wolf/internal/vclock"
)

// Candidate is one potential deadlock emitted mid-stream, the moment
// its closing acquisition arrived. It carries everything downstream
// consumers (corpus, wolfctl, dashboards) need without re-running
// detection on close.
type Candidate struct {
	// Cycle is the underlying chain in batch-canonical rotation
	// (first tuple belongs to the lexicographically smallest thread).
	Cycle *detect.Cycle `json:"-"`
	// Event is the 1-based stream position of the closing acquisition.
	Event int `json:"event"`
	// Fingerprint is the stable defect identity (fingerprint.Of).
	Fingerprint string `json:"fingerprint"`
	// Signature is the paper's sorted-sites defect signature.
	Signature string `json:"signature"`
	// Threads and Sites describe the cycle in cycle order.
	Threads []string `json:"threads"`
	Sites   []string `json:"sites"`
	// Pruned reports the online (S,J) vector-clock verdict: true means
	// the Pruner refuted the cycle as it closed (PruneRule says how).
	Pruned    bool   `json:"pruned"`
	PruneRule string `json:"prune_rule,omitempty"`
}

// EngineConfig controls the incremental detector.
type EngineConfig struct {
	// MaxLength bounds the number of threads per cycle;
	// detect.DefaultMaxLength when zero.
	MaxLength int
}

// Engine is the incremental half of the Extended Dynamic Cycle
// Detector: it maintains the lock graph ("who holds ℓ" postings) and
// per-thread lockset state online, and emits each cycle exactly once —
// when the tuple that closes it arrives.
//
// Equivalence with the batch detector: detect.Cycles roots its chain
// search at the cycle's minimum-thread tuple and therefore finds each
// cyclic sequence once. The engine instead roots at the newest tuple η:
// since stream order is trace order, every cycle has a unique
// last-arriving member, and rooting there also finds each cyclic
// sequence exactly once — the same set, discovered online. Candidates
// are rotated back to the batch-canonical form before emission, so
// fingerprints, signatures, and chain order are byte-identical to the
// batch path.
//
// Engine is not safe for concurrent use; the server serializes chunk
// appends per stream.
type Engine struct {
	maxLen int
	clocks []vclock.Vector
	heldBy map[string][]*trace.Tuple
	events int
	total  int

	chain []*trace.Tuple
	found []*detect.Cycle
}

// NewEngine returns an empty incremental detector.
func NewEngine(cfg EngineConfig) *Engine {
	maxLen := cfg.MaxLength
	if maxLen <= 0 {
		maxLen = detect.DefaultMaxLength
	}
	return &Engine{maxLen: maxLen, heldBy: make(map[string][]*trace.Tuple)}
}

// SetClocks arms the online Pruner with the trace's (S,J) vector-clock
// table (available from the stream header before the first tuple).
// Without clocks, candidates are emitted unpruned, exactly as batch
// detection without the Pruner stage.
func (e *Engine) SetClocks(clocks []vclock.Vector) { e.clocks = clocks }

// Events returns the number of tuples fed so far.
func (e *Engine) Events() int { return e.events }

// Total returns the number of candidates emitted so far.
func (e *Engine) Total() int { return e.total }

// Add feeds the next tuple in trace order and returns the candidates
// it closes (usually none). The returned slice is freshly allocated.
func (e *Engine) Add(tp *trace.Tuple) []Candidate {
	e.events++
	if tp == nil || len(tp.Held) == 0 {
		// Holds nothing: nobody can wait on it, so it can neither extend
		// nor close a chain (batch detection skips these roots too).
		return nil
	}
	e.found = e.found[:0]
	e.chain = e.chain[:0]
	e.extend(tp)
	var out []Candidate
	for _, cyc := range e.found {
		out = append(out, e.emit(cyc))
	}
	// Publish tp's holdings only after the search: a tuple cannot be
	// its own predecessor in a chain.
	for _, h := range tp.Held {
		e.heldBy[h.Lock] = append(e.heldBy[h.Lock], tp)
	}
	return out
}

// extend grows the chain rooted at the newest tuple. Invariant:
// chain[i+1] holds lock(chain[i]); closing requires chain[0] to hold
// the last tuple's wanted lock. Mirrors detector.extend except the
// root is the arrival-maximal tuple instead of the thread-minimal one.
func (e *Engine) extend(tp *trace.Tuple) {
	e.chain = append(e.chain, tp)
	defer func() { e.chain = e.chain[:len(e.chain)-1] }()

	first := e.chain[0]
	if len(e.chain) >= 2 && first.HoldsLock(tp.Lock) {
		e.found = append(e.found, &detect.Cycle{
			Tuples: canonical(append([]*trace.Tuple(nil), e.chain...)),
		})
	}
	if len(e.chain) == e.maxLen {
		return
	}
	for _, next := range e.heldBy[tp.Lock] {
		if e.conflicts(next) {
			continue
		}
		e.extend(next)
	}
}

// conflicts mirrors detector.conflicts: distinct threads, pairwise
// disjoint locksets.
func (e *Engine) conflicts(next *trace.Tuple) bool {
	for _, tp := range e.chain {
		if tp.Thread == next.Thread {
			return true
		}
		for _, h := range next.Held {
			if tp.HoldsLock(h.Lock) {
				return true
			}
		}
	}
	return false
}

// canonical rotates the chain so the lexicographically smallest thread
// comes first — the batch detector's canonical form. Threads in a
// cycle are distinct, so the rotation is unique.
func canonical(chain []*trace.Tuple) []*trace.Tuple {
	minAt := 0
	for i, tp := range chain {
		if tp.Thread < chain[minAt].Thread {
			minAt = i
		}
	}
	if minAt == 0 {
		return chain
	}
	rotated := make([]*trace.Tuple, 0, len(chain))
	rotated = append(rotated, chain[minAt:]...)
	rotated = append(rotated, chain[:minAt]...)
	return rotated
}

// emit materializes a Candidate, running the online Pruner when clocks
// are armed.
func (e *Engine) emit(cyc *detect.Cycle) Candidate {
	e.total++
	c := Candidate{
		Cycle:       cyc,
		Event:       e.events,
		Fingerprint: fingerprint.Of(cyc),
		Signature:   cyc.Signature(),
		Threads:     cyc.Threads(),
		Sites:       cyc.Sites(),
	}
	if len(e.clocks) > 0 {
		res := pruner.Prune([]*detect.Cycle{cyc}, e.clocks)
		if res.Verdicts[0] == pruner.False {
			c.Pruned = true
			c.PruneRule = res.Reasons[0].Rule
		}
	}
	return c
}
