// Package stream is the streaming ingestion subsystem: a chunked,
// resumable WTRC decoder plus an incremental deadlock detector, the two
// halves that turn wolfd from a file analyzer into a continuously-fed
// service. A client opens a stream, appends trace bytes in arbitrary
// chunks, and cycle candidates are emitted as soon as the closing
// acquisition arrives — long before the upload completes.
//
// The decoder is an explicit state machine rather than a goroutine
// wrapped around trace.ReadBinary: streams outlive requests, get
// evicted on idle timeouts, and number in the hundreds per process, so
// their suspended state must be plain data — a byte buffer and a
// section cursor — not a parked stack.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"wolf/internal/trace"
	"wolf/internal/vclock"
	"wolf/sim"
)

// ErrBudget is the sentinel wrapped by every per-stream memory budget
// rejection (errors.Is(err, ErrBudget)). wolfd maps it to HTTP 413.
var ErrBudget = errors.New("stream: memory budget exceeded")

// DefaultBudget is the per-stream decoder memory budget when the
// caller does not set one.
const DefaultBudget = 16 << 20

// section is the decoder's position in the WTRC layout. Sections are
// strictly ordered; the cursor only moves forward.
type section int

const (
	secMagic section = iota
	secVersion
	secSeed
	secSteps
	secTauCount
	secTaus
	secClockCount
	secClockVecLen
	secClockPair
	secStringCount
	secStrings
	secTupleCount
	secTupleHead
	secTupleHeld
	secDone
)

// Field kind codes for the tuple and held-lock schemas. The schema
// strings below mirror WriteBinary's field order byte for byte; the
// decoder is table-driven so the resume point inside a tuple is just
// an index into the schema.
const (
	kStr = 's' // string-table index: uvarint, bounds-checked
	kInt = 'i' // uvarint that must fit a non-negative int32
	kVar = 'v' // signed varint
)

// tupleSchema: thread, lock, site, threadID, idx.thread, idx.seq,
// key.thread, key.site, key.occ, tau, pos, held-count.
const tupleSchema = "sssvsissivii"

// heldSchema: lock, site, idx.thread, idx.seq, key.thread, key.site,
// key.occ.
const heldSchema = "sssissi"

// Retained-memory cost estimates (bytes) for budget accounting. These
// deliberately overestimate: the budget is a denial-of-service bound,
// not an accounting ledger, and rounding up keeps the bound honest.
const (
	tupleCost  = 208 // Tuple struct + pointer + per-thread index slot
	heldCost   = 96  // HeldLock struct
	stringCost = 48  // string header + table slot
	tauCost    = 8
	pairCost   = 16 // vclock.SJ + amortized slice header
)

// Decoder incrementally parses a WTRC binary trace fed in arbitrary
// byte chunks. Zero value is not usable; call NewDecoder.
//
// Contract with trace.ReadBinary: feeding the same bytes through Write
// in any chunking either yields (via Finalize) a trace byte-identical
// under WriteBinary to what ReadBinary returns, or rejects with an
// error of the same family — ErrCorrupt for structural damage,
// ErrInvalid (a *trace.ValidationError with its corruption class) for
// well-formed bytes describing an impossible execution. Validation
// runs incrementally: a bad tuple is rejected the moment it decodes,
// not after the upload completes.
type Decoder struct {
	budget int
	// retained is the estimated bytes held in decoded structures;
	// mem/peak additionally count the unconsumed buffer.
	retained int
	peak     int
	bytesIn  int64
	err      error

	buf []byte
	off int

	sec   section
	seed  int64
	steps int

	nTaus int
	taus  []int

	nClocks  int
	clockIdx int
	clocks   []vclock.Vector
	vecLen   int
	curVec   vclock.Vector
	pairS    int64
	pairHasS bool

	nStrings int
	table    []string
	strLen   int // pending string byte length; -1 = length not read yet

	nTuples  int
	tupleIdx int
	tuples   []*trace.Tuple
	drained  int

	head    [len(tupleSchema)]int64
	headIdx int
	held    []trace.HeldLock
	heldRec [len(heldSchema)]int64
	heldIdx int
	nHeld   int

	validator *trace.TupleValidator
}

// NewDecoder returns a decoder enforcing the given memory budget in
// bytes (<= 0 means DefaultBudget).
func NewDecoder(budget int) *Decoder {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Decoder{budget: budget, strLen: -1}
}

// Write feeds the next chunk. Split points are arbitrary — a varint,
// a string, even the magic may straddle chunks. The first error is
// sticky: it is returned now and by every later call.
func (d *Decoder) Write(p []byte) error {
	if d.err != nil {
		return d.err
	}
	d.bytesIn += int64(len(p))
	if d.sec == secDone {
		// Trailing bytes after the last tuple are ignored, exactly as
		// ReadBinary never reads them.
		return nil
	}
	d.buf = append(d.buf, p...)
	d.note(d.retained + len(d.buf) - d.off)
	for d.err == nil && d.step() {
	}
	// Compact: drop consumed bytes so suspended streams hold only the
	// partial item at the split point.
	if d.off > 0 {
		d.buf = append(d.buf[:0], d.buf[d.off:]...)
		d.off = 0
	}
	if d.sec == secDone {
		d.buf = nil
	}
	mem := d.retained + len(d.buf)
	d.note(mem)
	if d.err == nil && mem > d.budget {
		d.fail(fmt.Errorf("stream: decoder retains %d bytes, budget %d: %w", mem, d.budget, ErrBudget))
	}
	return d.err
}

// note tracks peak memory.
func (d *Decoder) note(mem int) {
	if mem > d.peak {
		d.peak = mem
	}
}

// fail records the first error.
func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// corruptf builds an ErrCorrupt-wrapping decode error matching the
// batch decoder's message shape.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("trace: "+format+": %w", append(args, trace.ErrCorrupt)...)
}

// step advances the state machine by one wire item. It returns false
// when more bytes are needed (or on error); state transitions that
// consume nothing return true so the loop keeps draining.
func (d *Decoder) step() bool {
	switch d.sec {
	case secMagic:
		if len(d.buf)-d.off < len(trace.BinaryMagic) {
			return false
		}
		var m [4]byte
		copy(m[:], d.buf[d.off:])
		if m != trace.BinaryMagic {
			d.fail(corruptf("bad magic %q", m[:]))
			return false
		}
		d.off += len(m)
		d.sec = secVersion

	case secVersion:
		v, ok := d.uvarint()
		if !ok {
			return false
		}
		if v != trace.BinaryVersion {
			d.fail(corruptf("unsupported binary version %d (want %d)", v, trace.BinaryVersion))
			return false
		}
		d.sec = secSeed

	case secSeed:
		v, ok := d.varint()
		if !ok {
			return false
		}
		d.seed = v
		d.sec = secSteps

	case secSteps:
		v, ok := d.intval()
		if !ok {
			return false
		}
		d.steps = v
		d.sec = secTauCount

	case secTauCount:
		n, ok := d.intval()
		if !ok {
			return false
		}
		d.nTaus = n
		if n > 0 {
			d.taus = make([]int, 0, trace.CapAlloc(n))
		}
		d.sec = secTaus

	case secTaus:
		if len(d.taus) == d.nTaus {
			d.sec = secClockCount
			return true
		}
		v, ok := d.varint()
		if !ok {
			return false
		}
		d.taus = append(d.taus, int(v))
		d.retained += tauCost

	case secClockCount:
		n, ok := d.intval()
		if !ok {
			return false
		}
		d.nClocks = n
		d.sec = secClockVecLen

	case secClockVecLen:
		if d.clockIdx == d.nClocks {
			d.endHeader()
			return true
		}
		n, ok := d.intval()
		if !ok {
			return false
		}
		d.vecLen = n
		d.curVec = make(vclock.Vector, 0, trace.CapAlloc(n))
		d.sec = secClockPair

	case secClockPair:
		if len(d.curVec) == d.vecLen {
			d.clocks = append(d.clocks, d.curVec)
			d.curVec = nil
			d.clockIdx++
			d.sec = secClockVecLen
			return true
		}
		v, ok := d.varint()
		if !ok {
			return false
		}
		if !d.pairHasS {
			d.pairS, d.pairHasS = v, true
			return true
		}
		d.curVec = append(d.curVec, vclock.SJ{S: int(d.pairS), J: int(v)})
		d.pairHasS = false
		d.retained += pairCost

	case secStringCount:
		n, ok := d.intval()
		if !ok {
			return false
		}
		d.nStrings = n
		d.table = make([]string, 0, trace.CapAlloc(n))
		d.sec = secStrings

	case secStrings:
		if len(d.table) == d.nStrings {
			d.sec = secTupleCount
			return true
		}
		if d.strLen < 0 {
			n, ok := d.intval()
			if !ok {
				return false
			}
			if n > trace.MaxStringLen {
				d.fail(corruptf("binary decode: string length %d exceeds limit", n))
				return false
			}
			d.strLen = n
			return true
		}
		if len(d.buf)-d.off < d.strLen {
			return false
		}
		s := string(d.buf[d.off : d.off+d.strLen])
		d.off += d.strLen
		d.table = append(d.table, s)
		d.retained += len(s) + stringCost
		d.strLen = -1

	case secTupleCount:
		n, ok := d.intval()
		if !ok {
			return false
		}
		d.nTuples = n
		d.sec = secTupleHead

	case secTupleHead:
		if d.tupleIdx == d.nTuples {
			d.sec = secDone
			return true
		}
		v, ok := d.field(tupleSchema[d.headIdx])
		if !ok {
			return false
		}
		d.head[d.headIdx] = v
		d.headIdx++
		if d.headIdx == len(tupleSchema) {
			d.nHeld = int(d.head[len(tupleSchema)-1])
			if d.nHeld > 0 {
				d.held = make([]trace.HeldLock, 0, trace.CapAlloc(d.nHeld))
			} else {
				d.held = nil
			}
			d.sec = secTupleHeld
		}

	case secTupleHeld:
		if len(d.held) == d.nHeld {
			d.finishTuple()
			return true
		}
		v, ok := d.field(heldSchema[d.heldIdx])
		if !ok {
			return false
		}
		d.heldRec[d.heldIdx] = v
		d.heldIdx++
		if d.heldIdx == len(heldSchema) {
			r := d.heldRec
			d.held = append(d.held, trace.HeldLock{
				Lock: d.table[r[0]],
				Site: d.table[r[1]],
				Idx:  sim.Index{Thread: d.table[r[2]], Seq: int(r[3])},
				Key:  trace.Key{Thread: d.table[r[4]], Site: d.table[r[5]], Occ: int(r[6])},
			})
			d.retained += heldCost
			d.heldIdx = 0
		}

	case secDone:
		d.off = len(d.buf)
		return false
	}
	return d.err == nil
}

// endHeader runs once the taus and clocks sections are complete: the
// trace-level shape checks fire here — the streaming analogue of
// Validate rejecting before the first tuple — and the incremental
// per-tuple validator is armed.
func (d *Decoder) endHeader() {
	if err := trace.ValidateClocks(d.clocks, d.taus); err != nil {
		d.fail(err)
		return
	}
	d.validator = trace.NewTupleValidator(d.clocks, d.taus)
	d.sec = secStringCount
}

// finishTuple materializes the decoded tuple, validates it in stream
// order, and makes it visible to Events.
func (d *Decoder) finishTuple() {
	h := d.head
	tp := &trace.Tuple{
		Thread:   d.table[h[0]],
		Lock:     d.table[h[1]],
		Site:     d.table[h[2]],
		ThreadID: sim.ThreadID(h[3]),
		Idx:      sim.Index{Thread: d.table[h[4]], Seq: int(h[5])},
		Key:      trace.Key{Thread: d.table[h[6]], Site: d.table[h[7]], Occ: int(h[8])},
		Tau:      int(h[9]),
		Pos:      int(h[10]),
		Held:     d.held,
	}
	d.held = nil
	d.headIdx = 0
	if err := d.validator.Check(tp); err != nil {
		d.fail(err)
		return
	}
	d.tuples = append(d.tuples, tp)
	d.retained += tupleCost + len(tp.Held)*heldCost
	d.tupleIdx++
	d.sec = secTupleHead
}

// uvarint reads one unsigned varint, or reports that the buffer ends
// mid-value. Overflow (>64 bits) is corruption, detected even when the
// garbage spans chunk boundaries.
func (d *Decoder) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n > 0 {
		d.off += n
		return v, true
	}
	if n < 0 {
		d.fail(corruptf("binary decode: varint overflows 64 bits"))
	}
	return 0, false
}

// varint reads one signed varint.
func (d *Decoder) varint() (int64, bool) {
	v, n := binary.Varint(d.buf[d.off:])
	if n > 0 {
		d.off += n
		return v, true
	}
	if n < 0 {
		d.fail(corruptf("binary decode: varint overflows 64 bits"))
	}
	return 0, false
}

// intval reads a uvarint that must fit a non-negative int, mirroring
// the batch decoder's range rule (and its error text).
func (d *Decoder) intval() (int, bool) {
	v, ok := d.uvarint()
	if !ok {
		return 0, false
	}
	if v > math.MaxInt32 {
		d.fail(corruptf("binary decode: value %d out of range", v))
		return 0, false
	}
	return int(v), true
}

// field reads one schema-typed tuple field. String-table indices are
// bounds-checked at read time, exactly like binReader.str.
func (d *Decoder) field(kind byte) (int64, bool) {
	switch kind {
	case kStr:
		i, ok := d.uvarint()
		if !ok {
			return 0, false
		}
		if i >= uint64(len(d.table)) {
			d.fail(corruptf("binary decode: string index %d out of range (table size %d)", i, len(d.table)))
			return 0, false
		}
		return int64(i), true
	case kInt:
		v, ok := d.intval()
		return int64(v), ok
	default: // kVar
		return d.varint()
	}
}

// HeaderDone reports whether the taus and clocks sections have fully
// decoded, at which point Clocks and Taus are final.
func (d *Decoder) HeaderDone() bool { return d.sec >= secStringCount }

// Clocks returns the decoded vector-clock table (final once
// HeaderDone). The caller must not mutate it.
func (d *Decoder) Clocks() []vclock.Vector { return d.clocks }

// Taus returns the decoded timestamp table (final once HeaderDone).
func (d *Decoder) Taus() []int { return d.taus }

// Events returns the tuples completed since the previous call, in
// trace order. Each tuple is returned exactly once; the engine drains
// this after every chunk.
func (d *Decoder) Events() []*trace.Tuple {
	out := d.tuples[d.drained:len(d.tuples):len(d.tuples)]
	d.drained = len(d.tuples)
	return out
}

// Len returns the number of tuples fully decoded so far.
func (d *Decoder) Len() int { return len(d.tuples) }

// BytesIn returns the total bytes fed through Write.
func (d *Decoder) BytesIn() int64 { return d.bytesIn }

// Mem returns the current estimated retained memory in bytes.
func (d *Decoder) Mem() int { return d.retained + len(d.buf) - d.off }

// Peak returns the high-water mark of Mem over the stream's life; a
// well-formed stream never exceeds the budget plus one chunk.
func (d *Decoder) Peak() int { return d.peak }

// Done reports whether the full declared trace has decoded; trailing
// bytes after that are ignored.
func (d *Decoder) Done() bool { return d.sec == secDone }

// Err returns the sticky error, if any.
func (d *Decoder) Err() error { return d.err }

// Finalize assembles the completed stream into a batch trace — the
// exact value ReadBinary would have produced from the concatenated
// chunks — for handoff to the normal analysis pipeline. A stream that
// ends mid-section is corrupt, matching ReadBinary's EOF behavior.
func (d *Decoder) Finalize() (*trace.Trace, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.sec != secDone {
		d.fail(corruptf("binary decode: stream truncated in section %d after %d bytes", int(d.sec), d.bytesIn))
		return nil, d.err
	}
	return trace.Assemble(d.tuples, d.clocks, d.taus, d.steps, d.seed)
}
