package stream_test

import (
	"bytes"
	"errors"
	"testing"

	"wolf/internal/core"
	"wolf/internal/stream"
	"wolf/internal/trace"
	"wolf/internal/workloads"
)

// recordTrace records one terminating run of the named workload.
func recordTrace(t *testing.T, name string) *trace.Trace {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %s not registered", name)
	}
	seed, ok := workloads.FindTerminatingSeed(w.New, 300)
	if !ok {
		t.Fatalf("no terminating seed for %s", name)
	}
	return core.Record(w.New, seed, 0)
}

// encode serializes a trace to WTRC bytes.
func encode(t testing.TB, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// feed streams data into d in chunks of at most size bytes.
func feed(t testing.TB, d *stream.Decoder, data []byte, size int) error {
	t.Helper()
	for off := 0; off < len(data); off += size {
		end := min(off+size, len(data))
		if err := d.Write(data[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// TestDecoderEverySplitPoint: a two-chunk split at every byte offset
// reconstructs a trace that re-encodes byte-identically. This is the
// strongest resumability check: every varint, string, and the magic
// itself get straddled at some offset.
func TestDecoderEverySplitPoint(t *testing.T) {
	data := encode(t, recordTrace(t, "Figure4"))
	for cut := 0; cut <= len(data); cut++ {
		d := stream.NewDecoder(0)
		if err := d.Write(data[:cut]); err != nil {
			t.Fatalf("cut %d: first chunk: %v", cut, err)
		}
		if err := d.Write(data[cut:]); err != nil {
			t.Fatalf("cut %d: second chunk: %v", cut, err)
		}
		tr, err := d.Finalize()
		if err != nil {
			t.Fatalf("cut %d: finalize: %v", cut, err)
		}
		if got := encode(t, tr); !bytes.Equal(got, data) {
			t.Fatalf("cut %d: re-encoded trace differs from input", cut)
		}
	}
}

// TestDecoderSingleByteChunks: the degenerate chunking still works, and
// events drain in trace order, each tuple exactly once.
func TestDecoderSingleByteChunks(t *testing.T) {
	want := recordTrace(t, "Figure4")
	data := encode(t, want)
	d := stream.NewDecoder(0)
	var got []*trace.Tuple
	for _, b := range data {
		if err := d.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
		got = append(got, d.Events()...)
	}
	if !d.Done() {
		t.Fatal("decoder not done after full input")
	}
	if len(got) != len(want.Tuples) {
		t.Fatalf("drained %d events, want %d", len(got), len(want.Tuples))
	}
	for i, tp := range got {
		w := want.Tuples[i]
		if tp.Thread != w.Thread || tp.Lock != w.Lock || tp.Pos != w.Pos {
			t.Fatalf("event %d = %v, want %v", i, tp, w)
		}
	}
	if extra := d.Events(); len(extra) != 0 {
		t.Fatalf("second drain returned %d events, want 0", len(extra))
	}
}

// TestDecoderBudget: peak memory stays under a generous budget on the
// happy path, and a starved budget rejects with ErrBudget instead of
// buffering without bound.
func TestDecoderBudget(t *testing.T) {
	data := encode(t, recordTrace(t, "Figure4"))

	const budget = 256 << 10
	d := stream.NewDecoder(budget)
	if err := feed(t, d, data, 1024); err != nil {
		t.Fatal(err)
	}
	if d.Peak() > budget {
		t.Fatalf("peak memory %d exceeds budget %d", d.Peak(), budget)
	}
	if d.Peak() == 0 {
		t.Fatal("peak memory not tracked")
	}

	tiny := stream.NewDecoder(512)
	err := feed(t, tiny, data, 1024)
	if !errors.Is(err, stream.ErrBudget) {
		t.Fatalf("starved decoder error = %v, want ErrBudget", err)
	}
	// Sticky: later writes keep failing, nothing more is retained.
	if err := tiny.Write(data[:1]); !errors.Is(err, stream.ErrBudget) {
		t.Fatalf("write after budget error = %v, want ErrBudget", err)
	}
}

// TestDecoderCorrupt: structural damage is ErrCorrupt, at the moment
// the damaged bytes arrive.
func TestDecoderCorrupt(t *testing.T) {
	data := encode(t, recordTrace(t, "Figure4"))

	t.Run("magic", func(t *testing.T) {
		d := stream.NewDecoder(0)
		err := d.Write([]byte("JUNK and more"))
		if !errors.Is(err, trace.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := append([]byte{}, data...)
		bad[4] = 99 // version uvarint
		d := stream.NewDecoder(0)
		if err := feed(t, d, bad, 3); !errors.Is(err, trace.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		d := stream.NewDecoder(0)
		if err := d.Write(data[:len(data)/2]); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Finalize(); !errors.Is(err, trace.ErrCorrupt) {
			t.Fatalf("finalize = %v, want ErrCorrupt", err)
		}
	})
	t.Run("varint-overflow", func(t *testing.T) {
		// 11 continuation bytes where the version uvarint belongs,
		// split across chunks so the overflow itself is resumable.
		bad := append([]byte("WTRC"), bytes.Repeat([]byte{0xFF}, 11)...)
		d := stream.NewDecoder(0)
		if err := feed(t, d, bad, 2); !errors.Is(err, trace.ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("trailing-bytes-ignored", func(t *testing.T) {
		d := stream.NewDecoder(0)
		if err := feed(t, d, append(append([]byte{}, data...), "garbage"...), 7); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Finalize(); err != nil {
			t.Fatalf("finalize with trailing bytes: %v", err)
		}
	})
}

// TestDecoderInvalid: well-formed bytes describing an impossible
// execution are rejected mid-stream with the batch validator's
// corruption class, as soon as the offending tuple decodes.
func TestDecoderInvalid(t *testing.T) {
	tr := recordTrace(t, "Figure4")
	tr.Tuples[0].Key.Occ = 0 // contradicts the tuple: bad-key
	data := encode(t, tr)
	d := stream.NewDecoder(0)
	err := feed(t, d, data, 16)
	if !errors.Is(err, trace.ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
	var ve *trace.ValidationError
	if !errors.As(err, &ve) || ve.Class != trace.InvalidBadKey {
		t.Fatalf("err = %v, want ValidationError class %s", err, trace.InvalidBadKey)
	}
}

// FuzzChunkedDecoder: for arbitrary bytes and arbitrary split points,
// the chunked decoder and the batch path (ReadBinary + Validate) agree
// on accept/reject, and on accept produce identical traces.
func FuzzChunkedDecoder(f *testing.F) {
	for _, wl := range []string{"Figure4", "Figure9"} {
		w, ok := workloads.ByName(wl)
		if !ok {
			continue
		}
		if seed, ok := workloads.FindTerminatingSeed(w.New, 300); ok {
			var buf bytes.Buffer
			if err := core.Record(w.New, seed, 0).WriteBinary(&buf); err == nil {
				f.Add(buf.Bytes(), uint64(3))
			}
		}
	}
	f.Add([]byte("WTRC"), uint64(1))
	f.Add([]byte{}, uint64(0))

	f.Fuzz(func(t *testing.T, data []byte, splitSeed uint64) {
		batch, batchErr := trace.ReadBinary(bytes.NewReader(data))
		if batchErr == nil {
			batchErr = trace.Validate(batch)
		}

		// Huge budget: equivalence is about parsing, not shedding.
		d := stream.NewDecoder(1 << 30)
		var streamErr error
		rng := splitSeed
		for off := 0; off < len(data) && streamErr == nil; {
			rng = rng*6364136223846793005 + 1442695040888963407
			n := 1 + int(rng>>33)%64
			end := min(off+n, len(data))
			streamErr = d.Write(data[off:end])
			off = end
		}
		var streamed *trace.Trace
		if streamErr == nil {
			streamed, streamErr = d.Finalize()
		}

		if (batchErr == nil) != (streamErr == nil) {
			t.Fatalf("accept mismatch: batch=%v stream=%v", batchErr, streamErr)
		}
		if batchErr != nil {
			return
		}
		var a, b bytes.Buffer
		if err := batch.WriteBinary(&a); err != nil {
			t.Fatal(err)
		}
		if err := streamed.WriteBinary(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("decoded traces differ between batch and chunked paths")
		}
	})
}
