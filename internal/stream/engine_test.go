package stream_test

import (
	"fmt"
	"strings"
	"testing"

	"wolf/internal/core"
	"wolf/internal/detect"
	"wolf/internal/pruner"
	"wolf/internal/stream"
	"wolf/internal/trace"
	"wolf/internal/workloads"
)

// cycleKey identifies a cycle instance by its exact tuples in
// canonical chain order, so stream and batch results compare as
// multisets without depending on discovery order.
func cycleKey(c *detect.Cycle) string {
	parts := make([]string, len(c.Tuples))
	for i, tp := range c.Tuples {
		parts[i] = fmt.Sprintf("%s|%s|%s|%d", tp.Thread, tp.Lock, tp.Site, tp.Pos)
	}
	return strings.Join(parts, "→")
}

// TestEngineMatchesBatchDetect: over the whole workload registry, the
// candidates the engine emits online — fed through the chunked decoder
// in small chunks — are exactly the batch detector's cycles, including
// canonical chain order, fingerprints, and pruner verdicts.
func TestEngineMatchesBatchDetect(t *testing.T) {
	for _, wl := range workloads.Registry() {
		t.Run(wl.Name, func(t *testing.T) {
			seed, ok := workloads.FindTerminatingSeed(wl.New, 300)
			if !ok {
				t.Skipf("no terminating seed for %s", wl.Name)
			}
			tr := core.Record(wl.New, seed, 0)
			data := encode(t, tr)

			// Batch reference: full-trace detection plus pruner verdicts.
			batch := detect.Cycles(tr, detect.Config{})
			res := pruner.Prune(batch, tr.Clocks)
			want := make(map[string]int)
			wantPruned := make(map[string]bool)
			for i, c := range batch {
				k := cycleKey(c)
				want[k]++
				wantPruned[k] = res.Verdicts[i] == pruner.False
			}

			// Streamed: decode in 512-byte chunks, drain into the engine.
			d := stream.NewDecoder(0)
			e := stream.NewEngine(stream.EngineConfig{})
			var cands []stream.Candidate
			armed := false
			for off := 0; off < len(data); off += 512 {
				end := min(off+512, len(data))
				if err := d.Write(data[off:end]); err != nil {
					t.Fatal(err)
				}
				if !armed && d.HeaderDone() {
					e.SetClocks(d.Clocks())
					armed = true
				}
				for _, tp := range d.Events() {
					cands = append(cands, e.Add(tp)...)
				}
			}
			if !d.Done() {
				t.Fatal("decoder not done")
			}
			if e.Events() != len(tr.Tuples) {
				t.Fatalf("engine saw %d events, want %d", e.Events(), len(tr.Tuples))
			}

			got := make(map[string]int)
			for _, c := range cands {
				k := cycleKey(c.Cycle)
				got[k]++
				if c.Pruned != wantPruned[k] {
					t.Errorf("cycle %s: stream pruned=%v, batch=%v", k, c.Pruned, wantPruned[k])
				}
			}
			if len(got) != len(want) {
				t.Fatalf("stream found %d distinct cycles, batch %d\nstream: %v\nbatch: %v",
					len(got), len(want), got, want)
			}
			for k, n := range want {
				if got[k] != n {
					t.Errorf("cycle %s: stream count %d, batch %d", k, got[k], n)
				}
			}

			// Fingerprints byte-identical to what the batch pipeline
			// derives from the same cycles.
			batchFPs := make(map[string]bool)
			for _, c := range batch {
				batchFPs[cycleKey(c)] = true
			}
			for _, c := range cands {
				if !batchFPs[cycleKey(c.Cycle)] {
					t.Errorf("stream-only cycle %s (fp %s)", cycleKey(c.Cycle), c.Fingerprint)
				}
			}
		})
	}
}

// TestEngineEmitsAtClosingEvent: the candidate's Event is the stream
// position of the last-arriving tuple — the earliest moment the cycle
// is knowable — not the end of the trace.
func TestEngineEmitsAtClosingEvent(t *testing.T) {
	tr := recordTrace(t, "Figure4")
	batch := detect.Cycles(tr, detect.Config{})
	if len(batch) == 0 {
		t.Fatal("Figure4 produced no cycles")
	}

	pos := make(map[*trace.Tuple]int)
	for i, tp := range tr.Tuples {
		pos[tp] = i + 1
	}

	e := stream.NewEngine(stream.EngineConfig{})
	e.SetClocks(tr.Clocks)
	var cands []stream.Candidate
	for _, tp := range tr.Tuples {
		cands = append(cands, e.Add(tp)...)
	}
	if len(cands) != len(batch) {
		t.Fatalf("engine emitted %d candidates, batch found %d", len(cands), len(batch))
	}
	for _, c := range cands {
		last := 0
		for _, tp := range c.Cycle.Tuples {
			last = max(last, pos[tp])
		}
		if c.Event != last {
			t.Errorf("candidate %s: emitted at event %d, closing tuple at %d",
				c.Signature, c.Event, last)
		}
		if c.Event == len(tr.Tuples) && last != len(tr.Tuples) {
			t.Errorf("candidate %s deferred to end of trace", c.Signature)
		}
	}
}
