// Package explore enumerates every schedule of a (small) sim program and
// decides deadlock feasibility exactly. It is the ground-truth oracle the
// test suite uses to machine-check the WOLF pipeline: the Pruner and
// Generator must never discard a feasible deadlock, and every confirmed
// deadlock must actually be reachable.
//
// The explorer performs stateless depth-first search over scheduling
// decisions, in the style of systematic concurrency testing tools like
// CHESS: a run is re-executed from scratch following a recorded prefix of
// thread picks; when more than one thread is enabled the run is halted
// and every choice is explored. Runs advance deterministically through
// forced segments (exactly one enabled thread) without branching, so the
// number of re-executions equals the number of branch points, not steps.
package explore

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"wolf/internal/detect"
	"wolf/internal/obs"
	"wolf/sim"
)

// Limits bounds an exploration.
type Limits struct {
	// MaxRuns caps the number of complete schedules; DefaultMaxRuns when
	// zero. The result is marked Truncated when the cap is hit.
	MaxRuns int
	// MaxSteps bounds each run's length (sim.DefaultMaxSteps when zero).
	MaxSteps int
	// BoundPreemptions enables CHESS-style iterative context bounding:
	// schedules may contain at most MaxPreemptions preemptive switches
	// (switching away from a thread that could have continued).
	// Non-preemptive switches — the running thread blocked or exited —
	// are always free. Musuvathi and Qadeer's empirical result is that
	// small bounds (≤2) expose most concurrency bugs while shrinking the
	// schedule space polynomially.
	BoundPreemptions bool
	// MaxPreemptions is the bound when BoundPreemptions is set.
	MaxPreemptions int
}

// DefaultMaxRuns caps exploration when Limits.MaxRuns is zero.
const DefaultMaxRuns = 100_000

// Deadlock is one distinct deadlocked stop state found by exploration.
type Deadlock struct {
	// Pairs is the multiset of (site, lock) pairs of threads blocked on
	// lock acquisitions, sorted; the canonical fingerprint.
	Pairs []Pair
	// Count is how many explored schedules ended in this state.
	Count int
}

// Pair is a blocked acquisition: source site and lock name.
type Pair struct {
	Site string
	Lock string
}

// String formats the pair as site/lock.
func (p Pair) String() string { return p.Site + "/" + p.Lock }

// fingerprint canonicalizes a pair multiset.
func fingerprint(pairs []Pair) string {
	ss := make([]string, len(pairs))
	for i, p := range pairs {
		ss[i] = p.String()
	}
	sort.Strings(ss)
	return strings.Join(ss, "+")
}

// Result summarizes an exploration.
type Result struct {
	// Runs is the number of complete schedules explored.
	Runs int
	// Terminated counts schedules where every thread finished.
	Terminated int
	// Errors counts schedules ending in a program error.
	Errors int
	// Deadlocks maps fingerprints to distinct deadlock states.
	Deadlocks map[string]*Deadlock
	// Truncated is true when MaxRuns stopped the search early; absence
	// of a deadlock is then inconclusive.
	Truncated bool
}

// DeadlockFound reports whether any deadlock was reachable.
func (r *Result) DeadlockFound() bool { return len(r.Deadlocks) > 0 }

// CycleFeasible reports whether some explored deadlock contains every
// deadlocking acquisition of the cycle — the same criterion the
// Replayer's hit check uses, evaluated against exhaustive ground truth.
func (r *Result) CycleFeasible(c *detect.Cycle) bool {
	for _, d := range r.Deadlocks {
		if covers(d.Pairs, c) {
			return true
		}
	}
	return false
}

// covers reports whether the pair multiset includes each of the cycle's
// (site, lock) needs with multiplicity.
func covers(pairs []Pair, c *detect.Cycle) bool {
	avail := make(map[Pair]int, len(pairs))
	for _, p := range pairs {
		avail[p]++
	}
	for _, tp := range c.Tuples {
		k := Pair{Site: tp.Site, Lock: tp.Lock}
		if avail[k] == 0 {
			return false
		}
		avail[k]--
	}
	return true
}

// String renders the result summary.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d runs (%d terminated, %d errors, truncated=%v)",
		r.Runs, r.Terminated, r.Errors, r.Truncated)
	for fp, d := range r.Deadlocks {
		fmt.Fprintf(&sb, "\n  deadlock %s ×%d", fp, d.Count)
	}
	return sb.String()
}

// prefixStrategy replays a recorded pick prefix, then continues through
// forced segments and halts at the first real branch point.
type prefixStrategy struct {
	prefix []string // thread names to pick, in order
	pos    int
	// walked extends prefix with the forced picks taken after it.
	walked []string
	err    error
}

// Pick follows the prefix, auto-advances when unique, halts on branching.
func (s *prefixStrategy) Pick(_ *sim.World, enabled []*sim.Thread) *sim.Thread {
	if s.pos < len(s.prefix) {
		name := s.prefix[s.pos]
		s.pos++
		for _, t := range enabled {
			if t.Name() == name {
				return t
			}
		}
		s.err = fmt.Errorf("explore: thread %q not enabled at step %d; program is schedule-nondeterministic", name, s.pos-1)
		return nil
	}
	if len(enabled) == 1 {
		s.walked = append(s.walked, enabled[0].Name())
		return enabled[0]
	}
	return nil // branch point: halt and fork
}

// Explore exhaustively enumerates schedules of the program built by f.
func Explore(f sim.Factory, lim Limits) (*Result, error) {
	return ExploreCtx(context.Background(), f, lim)
}

// ExploreCtx is Explore with observability: when ctx carries an
// obs.Recorder, one "explore" span records the schedules executed and
// distinct deadlock states found, so oracle cost shows up in the same
// place as pipeline cost.
func ExploreCtx(ctx context.Context, f sim.Factory, lim Limits) (*Result, error) {
	_, sp := obs.Start(ctx, "explore")
	res, err := explore(f, lim)
	if sp != nil {
		if res != nil {
			sp.Add("runs", int64(res.Runs))
			sp.Add("deadlocks", int64(len(res.Deadlocks)))
		}
		sp.End()
	}
	return res, err
}

func explore(f sim.Factory, lim Limits) (*Result, error) {
	maxRuns := lim.MaxRuns
	if maxRuns <= 0 {
		maxRuns = DefaultMaxRuns
	}
	res := &Result{Deadlocks: make(map[string]*Deadlock)}
	// Iterative DFS over prefixes (explicit stack avoids deep recursion).
	type node struct {
		prefix      []string
		preemptions int
	}
	stack := []node{{}}
	for len(stack) > 0 {
		if res.Runs >= maxRuns {
			res.Truncated = true
			return res, nil
		}
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		prog, opts := f()
		st := &prefixStrategy{prefix: cur.prefix}
		if lim.MaxSteps > 0 {
			opts.MaxSteps = lim.MaxSteps
		}
		out := sim.Run(prog, st, opts)
		if st.err != nil {
			return nil, st.err
		}
		switch out.Kind {
		case sim.Halted:
			base := append(append([]string(nil), cur.prefix...), st.walked...)
			last := ""
			if len(base) > 0 {
				last = base[len(base)-1]
			}
			lastEnabled := false
			for _, name := range out.EnabledAtHalt {
				if name == last {
					lastEnabled = true
				}
			}
			// Push choices in reverse so exploration visits them in
			// creation order. Switching away from a still-enabled
			// running thread is a preemption; once the bound is spent,
			// only the running thread may continue.
			for i := len(out.EnabledAtHalt) - 1; i >= 0; i-- {
				name := out.EnabledAtHalt[i]
				pre := cur.preemptions
				if lastEnabled && name != last {
					if lim.BoundPreemptions && pre >= lim.MaxPreemptions {
						continue
					}
					pre++
				}
				child := append(append([]string(nil), base...), name)
				stack = append(stack, node{prefix: child, preemptions: pre})
			}
		case sim.Terminated:
			res.Runs++
			res.Terminated++
		case sim.Deadlocked:
			res.Runs++
			var pairs []Pair
			for _, b := range out.Blocked {
				if b.Op.Kind == sim.OpLock {
					pairs = append(pairs, Pair{Site: b.Op.Site, Lock: b.Op.Lock.Name()})
				}
			}
			fp := fingerprint(pairs)
			d := res.Deadlocks[fp]
			if d == nil {
				sort.Slice(pairs, func(i, j int) bool { return pairs[i].String() < pairs[j].String() })
				d = &Deadlock{Pairs: pairs}
				res.Deadlocks[fp] = d
			}
			d.Count++
		case sim.StepLimit:
			res.Runs++
			res.Errors++
		case sim.ProgramError:
			res.Runs++
			res.Errors++
		}
	}
	return res, nil
}
