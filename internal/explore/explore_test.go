package explore

import (
	"strings"
	"testing"

	"wolf/internal/detect"
	"wolf/internal/trace"
	"wolf/internal/vclock"
	"wolf/sim"
)

// twoLockFactory: the classic two-thread inversion.
func twoLockFactory() (sim.Program, sim.Options) {
	var a, b *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b = w.NewLock("A"), w.NewLock("B")
	}}
	prog := func(th *sim.Thread) {
		h := th.Go("w", func(u *sim.Thread) {
			u.Lock(b, "w1")
			u.Lock(a, "w2")
			u.Unlock(a, "w3")
			u.Unlock(b, "w4")
		}, "m1")
		th.Lock(a, "m2")
		th.Lock(b, "m3")
		th.Unlock(b, "m4")
		th.Unlock(a, "m5")
		th.Join(h, "m6")
	}
	return prog, opts
}

func TestTwoLockExploration(t *testing.T) {
	res, err := Explore(twoLockFactory, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("tiny program truncated")
	}
	if !res.DeadlockFound() {
		t.Fatal("deadlock not found")
	}
	if len(res.Deadlocks) != 1 {
		t.Fatalf("distinct deadlocks = %d, want 1:\n%v", len(res.Deadlocks), res)
	}
	for fp, d := range res.Deadlocks {
		if fp != "m3/B+w2/A" {
			t.Errorf("fingerprint = %s, want m3/B+w2/A", fp)
		}
		if d.Count < 1 {
			t.Error("zero count")
		}
	}
	if res.Terminated == 0 {
		t.Error("no terminating schedule found")
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0", res.Errors)
	}
}

// TestGuardedNoDeadlock: a guard lock makes the inversion safe; the
// explorer must prove it.
func TestGuardedNoDeadlock(t *testing.T) {
	f := func() (sim.Program, sim.Options) {
		var g, a, b *sim.Lock
		opts := sim.Options{Setup: func(w *sim.World) {
			g, a, b = w.NewLock("G"), w.NewLock("A"), w.NewLock("B")
		}}
		prog := func(th *sim.Thread) {
			h := th.Go("w", func(u *sim.Thread) {
				u.Lock(g, "wg")
				u.Lock(b, "w1")
				u.Lock(a, "w2")
				u.Unlock(a, "w3")
				u.Unlock(b, "w4")
				u.Unlock(g, "wg2")
			}, "m1")
			th.Lock(g, "mg")
			th.Lock(a, "m2")
			th.Lock(b, "m3")
			th.Unlock(b, "m4")
			th.Unlock(a, "m5")
			th.Unlock(g, "mg2")
			th.Join(h, "m6")
		}
		return prog, opts
	}
	res, err := Explore(f, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlockFound() {
		t.Fatalf("guarded program deadlocked:\n%v", res)
	}
}

// figure2Factory: the paper's Figure 2 synchronized-maps scenario.
func figure2Factory() (sim.Program, sim.Options) {
	var m1, m2 *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		m1, m2 = w.NewLock("SM1.mutex"), w.NewLock("SM2.mutex")
	}}
	equals := func(mine, other *sim.Lock) sim.Program {
		return func(u *sim.Thread) {
			u.Lock(mine, "2024")
			u.Lock(other, "509")
			u.Unlock(other, "509u")
			u.Lock(other, "522")
			u.Unlock(other, "522u")
			u.Unlock(mine, "2025")
		}
	}
	prog := func(th *sim.Thread) {
		h1 := th.Go("t1", equals(m1, m2), "s1")
		h2 := th.Go("t2", equals(m2, m1), "s2")
		th.Join(h1, "j1")
		th.Join(h2, "j2")
	}
	return prog, opts
}

// TestFigure2GroundTruth: exhaustive exploration confirms the paper's
// claim — θ1, θ2, θ3 are reachable, θ4 (both threads at 522) is not, in
// ANY interleaving.
func TestFigure2GroundTruth(t *testing.T) {
	res, err := Explore(figure2Factory, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("exploration truncated; raise MaxRuns")
	}
	for fp := range res.Deadlocks {
		if strings.Count(fp, "522/") == 2 {
			t.Fatalf("impossible θ4 deadlock reached: %s", fp)
		}
	}
	// θ1: both blocked at 509.
	wantTheta1 := false
	wantMixed := 0
	for fp := range res.Deadlocks {
		c509 := strings.Count(fp, "509/")
		c522 := strings.Count(fp, "522/")
		if c509 == 2 {
			wantTheta1 = true
		}
		if c509 == 1 && c522 == 1 {
			wantMixed++
		}
	}
	if !wantTheta1 {
		t.Errorf("θ1 (509+509) not found:\n%v", res)
	}
	if wantMixed != 2 {
		t.Errorf("mixed deadlocks (θ2, θ3) = %d, want 2:\n%v", wantMixed, res)
	}
}

// TestCycleFeasibleAgainstDetector: record Figure 2's trace, detect the
// four cycles, and verify the explorer judges exactly θ4 infeasible.
func TestCycleFeasibleAgainstDetector(t *testing.T) {
	prog, opts := figure2Factory()
	vt := vclock.NewTracker()
	rec := trace.NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	out := sim.Run(prog, sim.FirstEnabled{}, opts)
	if out.Kind != sim.Terminated {
		t.Fatalf("outcome = %v", out)
	}
	tr := rec.Finish(0)
	cycles := detect.Cycles(tr, detect.Config{})
	if len(cycles) != 4 {
		t.Fatalf("cycles = %d, want 4", len(cycles))
	}
	res, err := Explore(figure2Factory, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cycles {
		feasible := res.CycleFeasible(c)
		if c.Signature() == "522+522" && feasible {
			t.Errorf("θ4 judged feasible")
		}
		if c.Signature() != "522+522" && !feasible {
			t.Errorf("cycle %s judged infeasible, want feasible", c.Signature())
		}
	}
}

// TestTruncation: a big program trips MaxRuns and reports Truncated.
func TestTruncation(t *testing.T) {
	f := func() (sim.Program, sim.Options) {
		var l *sim.Lock
		opts := sim.Options{Setup: func(w *sim.World) { l = w.NewLock("L") }}
		prog := func(th *sim.Thread) {
			var hs []*sim.Thread
			for i := 0; i < 6; i++ {
				hs = append(hs, th.Go("w", func(u *sim.Thread) {
					for j := 0; j < 4; j++ {
						u.Lock(l, "a")
						u.Unlock(l, "b")
					}
				}, "m"))
			}
			for _, h := range hs {
				th.Join(h, "j")
			}
		}
		return prog, opts
	}
	res, err := Explore(f, Limits{MaxRuns: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatalf("expected truncation: %v", res)
	}
}

// TestDeterministicRunCount: exploring twice gives identical statistics.
func TestDeterministicRunCount(t *testing.T) {
	r1, err1 := Explore(twoLockFactory, Limits{})
	r2, err2 := Explore(twoLockFactory, Limits{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Runs != r2.Runs || r1.Terminated != r2.Terminated {
		t.Fatalf("nondeterministic exploration: %v vs %v", r1, r2)
	}
}

// TestSingleThreadNoBranching: a sequential program explores in one run.
func TestSingleThreadNoBranching(t *testing.T) {
	f := func() (sim.Program, sim.Options) {
		var l *sim.Lock
		opts := sim.Options{Setup: func(w *sim.World) { l = w.NewLock("L") }}
		return func(th *sim.Thread) {
			for i := 0; i < 10; i++ {
				th.Lock(l, "a")
				th.Unlock(l, "b")
			}
		}, opts
	}
	res, err := Explore(f, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 1 || res.Terminated != 1 {
		t.Fatalf("runs = %d terminated = %d, want 1/1", res.Runs, res.Terminated)
	}
}
