package explore

import (
	"testing"
)

// TestPreemptionBoundFindsDeadlock: the two-lock inversion needs exactly
// one preemption (switch away from a thread holding its first lock), so
// bound 1 finds it while bound 0 cannot.
func TestPreemptionBoundFindsDeadlock(t *testing.T) {
	res0, err := Explore(twoLockFactory, Limits{BoundPreemptions: true, MaxPreemptions: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res0.DeadlockFound() {
		t.Fatalf("bound 0 found a deadlock:\n%v", res0)
	}
	res1, err := Explore(twoLockFactory, Limits{BoundPreemptions: true, MaxPreemptions: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.DeadlockFound() {
		t.Fatalf("bound 1 missed the deadlock:\n%v", res1)
	}
}

// TestPreemptionBoundShrinksSpace: the bounded search explores far fewer
// schedules than the exhaustive one — CHESS's polynomial-space claim.
func TestPreemptionBoundShrinksSpace(t *testing.T) {
	full, err := Explore(figure2Factory, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := Explore(figure2Factory, Limits{BoundPreemptions: true, MaxPreemptions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Truncated {
		t.Fatal("bounded search truncated")
	}
	if bounded.Runs*4 > full.Runs {
		t.Fatalf("bound 2 explored %d of %d schedules; expected a large reduction",
			bounded.Runs, full.Runs)
	}
	// The empirical CHESS claim: small bounds still find the bugs. All
	// three feasible deadlock states appear with two preemptions.
	if len(bounded.Deadlocks) != 3 {
		t.Fatalf("bound 2 found %d deadlock states, want 3:\n%v", len(bounded.Deadlocks), bounded)
	}
}

// TestPreemptionZeroIsCooperative: bound 0 explores only non-preemptive
// schedules — the run count equals the number of orderings produced by
// switching exclusively at blocking points.
func TestPreemptionZeroIsCooperative(t *testing.T) {
	res, err := Explore(twoLockFactory, Limits{BoundPreemptions: true, MaxPreemptions: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs == 0 || res.Truncated {
		t.Fatalf("unexpected result: %v", res)
	}
	full, err := Explore(twoLockFactory, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs >= full.Runs {
		t.Fatalf("cooperative space (%d) not smaller than full (%d)", res.Runs, full.Runs)
	}
}
