package pruner

import (
	"testing"

	"wolf/internal/detect"
	"wolf/internal/trace"
	"wolf/internal/vclock"
	"wolf/sim"
)

// record runs prog under the extended recorder.
func record(t *testing.T, prog sim.Program, opts sim.Options, s sim.Strategy) *trace.Trace {
	t.Helper()
	vt := vclock.NewTracker()
	rec := trace.NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	out := sim.Run(prog, s, opts)
	if out.Kind == sim.ProgramError {
		t.Fatalf("outcome = %v", out)
	}
	return rec.Finish(0)
}

// TestFigure4Pruning: θ1 (main's first l2 acquisition at timestamp 1 vs
// t3, which starts afterwards) is pruned; θ2 survives. This is the
// paper's running example outcome (Section 3.3).
func TestFigure4Pruning(t *testing.T) {
	var l1, l2, l3 *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		l1, l2, l3 = w.NewLock("l1"), w.NewLock("l2"), w.NewLock("l3")
	}}
	t3body := func(u *sim.Thread) {
		u.Lock(l3, "31")
		u.Lock(l2, "32")
		u.Lock(l1, "33")
		u.Unlock(l1, "34")
		u.Unlock(l2, "35")
		u.Unlock(l3, "36")
	}
	prog := func(th *sim.Thread) {
		th.Lock(l1, "11")
		th.Lock(l2, "12")
		th.Unlock(l2, "13")
		th.Unlock(l1, "14")
		th.Go("t2", func(u *sim.Thread) { u.Go("t3", t3body, "21") }, "15")
		th.Lock(l3, "16")
		th.Unlock(l3, "17")
		th.Lock(l1, "18")
		th.Lock(l2, "19")
		th.Unlock(l2, "20")
		th.Unlock(l1, "21")
	}
	tr := record(t, prog, opts, sim.FirstEnabled{})
	cycles := detect.Cycles(tr, detect.Config{})
	if len(cycles) != 2 {
		t.Fatalf("cycles = %d, want 2", len(cycles))
	}
	res := Prune(cycles, tr.Clocks)
	if len(res.Pruned) != 1 || len(res.Kept) != 1 {
		t.Fatalf("pruned/kept = %d/%d, want 1/1\npruned: %v\nkept: %v",
			len(res.Pruned), len(res.Kept), res.Pruned, res.Kept)
	}
	if sig := res.Pruned[0].Signature(); sig != "12+33" {
		t.Errorf("pruned cycle = %s, want 12+33 (θ1)", sig)
	}
	if sig := res.Kept[0].Signature(); sig != "19+33" {
		t.Errorf("kept cycle = %s, want 19+33 (θ2)", sig)
	}
	for i, v := range res.Verdicts {
		if v == False {
			if res.Reasons[i] == nil || res.Reasons[i].Rule != "start-order" {
				t.Errorf("pruned reason = %+v, want start-order", res.Reasons[i])
			}
		}
	}
}

// TestFigure1Pattern: the Jigsaw ThreadCache false positive — t1 starts
// t2 while holding both locks; the cycle is pruned entirely.
func TestFigure1Pattern(t *testing.T) {
	var tc, ct *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		tc, ct = w.NewLock("ThreadCache"), w.NewLock("CachedThread")
	}}
	prog := func(th *sim.Thread) {
		// t1: initialize() synchronized on TC, start() synchronized on CT.
		th.Lock(tc, "401")
		th.Lock(ct, "75")
		h := th.Go("cached", func(u *sim.Thread) {
			// t2: waitForRunner() on CT, isFree() on TC.
			u.Lock(ct, "24")
			u.Lock(tc, "175")
			u.Unlock(tc, "176")
			u.Unlock(ct, "56")
		}, "76")
		th.Unlock(ct, "78")
		th.Unlock(tc, "417")
		th.Join(h, "end")
	}
	tr := record(t, prog, opts, sim.NewRandomStrategy(3))
	cycles := detect.Cycles(tr, detect.Config{})
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1", len(cycles))
	}
	res := Prune(cycles, tr.Clocks)
	if len(res.Pruned) != 1 {
		t.Fatalf("the Figure 1 start-order false positive was not pruned: %v", cycles[0])
	}
}

// TestJoinOrderPruning: t1 joins t2 before performing its inverted
// acquisitions — no overlap is possible.
func TestJoinOrderPruning(t *testing.T) {
	var a, b *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b = w.NewLock("A"), w.NewLock("B")
	}}
	prog := func(th *sim.Thread) {
		h := th.Go("w", func(u *sim.Thread) {
			u.Lock(b, "w1")
			u.Lock(a, "w2")
			u.Unlock(a, "w3")
			u.Unlock(b, "w4")
		}, "m1")
		th.Join(h, "m2") // strict ordering: w finished before main acquires
		th.Lock(a, "m3")
		th.Lock(b, "m4")
		th.Unlock(b, "m5")
		th.Unlock(a, "m6")
	}
	tr := record(t, prog, opts, sim.NewRandomStrategy(1))
	cycles := detect.Cycles(tr, detect.Config{})
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1", len(cycles))
	}
	res := Prune(cycles, tr.Clocks)
	if len(res.Pruned) != 1 {
		t.Fatal("join-ordered false positive not pruned")
	}
	for _, r := range res.Reasons {
		if r != nil && r.Rule != "join-order" {
			t.Errorf("rule = %s, want join-order", r.Rule)
		}
	}
}

// TestRealDeadlockSurvives: two concurrently-live threads with inverted
// acquisitions must not be pruned.
func TestRealDeadlockSurvives(t *testing.T) {
	var a, b *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b = w.NewLock("A"), w.NewLock("B")
	}}
	prog := func(th *sim.Thread) {
		h := th.Go("w", func(u *sim.Thread) {
			u.Lock(b, "w1")
			u.Lock(a, "w2")
			u.Unlock(a, "w3")
			u.Unlock(b, "w4")
		}, "m1")
		th.Lock(a, "m2")
		th.Lock(b, "m3")
		th.Unlock(b, "m4")
		th.Unlock(a, "m5")
		th.Join(h, "m6")
	}
	// Sequential schedule records both orders without deadlocking.
	tr := record(t, prog, opts, sim.FirstEnabled{})
	cycles := detect.Cycles(tr, detect.Config{})
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1", len(cycles))
	}
	res := Prune(cycles, tr.Clocks)
	if len(res.Kept) != 1 {
		t.Fatalf("real deadlock pruned: %+v", res.Reasons)
	}
}

// TestSiblingsAfterSequentialStarts: main starts w1, joins it, then
// starts w2 — w1/w2 cycles are pruned via transitive join knowledge.
func TestSiblingsAfterSequentialStarts(t *testing.T) {
	var a, b *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b = w.NewLock("A"), w.NewLock("B")
	}}
	prog := func(th *sim.Thread) {
		h1 := th.Go("w1", func(u *sim.Thread) {
			u.Lock(a, "x1")
			u.Lock(b, "x2")
			u.Unlock(b, "x3")
			u.Unlock(a, "x4")
		}, "m1")
		th.Join(h1, "m2")
		h2 := th.Go("w2", func(u *sim.Thread) {
			u.Lock(b, "y1")
			u.Lock(a, "y2")
			u.Unlock(a, "y3")
			u.Unlock(b, "y4")
		}, "m3")
		th.Join(h2, "m4")
	}
	tr := record(t, prog, opts, sim.NewRandomStrategy(2))
	cycles := detect.Cycles(tr, detect.Config{})
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1", len(cycles))
	}
	res := Prune(cycles, tr.Clocks)
	if len(res.Pruned) != 1 {
		t.Fatal("sequentially-separated siblings not pruned")
	}
}

// TestConcurrentSiblingsSurvive: two overlapping siblings stay Unknown.
func TestConcurrentSiblingsSurvive(t *testing.T) {
	var a, b *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b = w.NewLock("A"), w.NewLock("B")
	}}
	prog := func(th *sim.Thread) {
		h1 := th.Go("w1", func(u *sim.Thread) {
			u.Lock(a, "x1")
			u.Lock(b, "x2")
			u.Unlock(b, "x3")
			u.Unlock(a, "x4")
		}, "m1")
		h2 := th.Go("w2", func(u *sim.Thread) {
			u.Lock(b, "y1")
			u.Lock(a, "y2")
			u.Unlock(a, "y3")
			u.Unlock(b, "y4")
		}, "m2")
		th.Join(h1, "m3")
		th.Join(h2, "m4")
	}
	tr := record(t, prog, opts, sim.FirstEnabled{})
	cycles := detect.Cycles(tr, detect.Config{})
	if len(cycles) != 1 {
		t.Fatalf("cycles = %d, want 1", len(cycles))
	}
	res := Prune(cycles, tr.Clocks)
	if len(res.Kept) != 1 {
		t.Fatalf("concurrent siblings wrongly pruned: %+v", res.Reasons[0])
	}
}
