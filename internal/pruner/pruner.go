// Package pruner implements WOLF's Pruner (Algorithm 2 of the paper): it
// eliminates potential deadlocks whose threads provably cannot overlap,
// using the (S, J) vector clocks recorded by the extended detector.
//
// For a cycle θ and every ordered pair of its tuples (ηi, ηj) with
// threads ti ≠ tj, the cycle is a false positive if either
//
//   - tj's deadlocking acquisition always completes before ti starts
//     (Vi(tj).S > ηj.τ), or
//   - tj always terminates before ti's deadlocking acquisition
//     (Vi(tj).J ≠ ⊥ and Vi(tj).J ≤ ηi.τ).
//
// The canonical example is the paper's Figure 1 (and θ1 of Figure 4): a
// thread that starts another while holding both cycle locks can never
// deadlock with it at those acquisitions.
package pruner

import (
	"context"

	"wolf/internal/detect"
	"wolf/internal/obs"
	"wolf/internal/vclock"
)

// Verdict classifies a cycle after pruning.
type Verdict int

const (
	// Unknown: the Pruner could not refute the cycle; it remains a
	// potential deadlock.
	Unknown Verdict = iota
	// False: the cycle can never manifest; eliminated.
	False
)

// String returns "unknown" or "false".
func (v Verdict) String() string {
	if v == False {
		return "false"
	}
	return "unknown"
}

// Explain records why a cycle was pruned.
type Explain struct {
	// ThreadA and ThreadB are the two cycle threads the refutation is
	// about (ta = ηi's thread, tb = ηj's thread).
	ThreadA, ThreadB string
	// Rule is "start-order" for the S check or "join-order" for the J
	// check.
	Rule string
}

// Result maps each input cycle (by slice position) to its verdict.
type Result struct {
	// Verdicts is parallel to the input cycle slice.
	Verdicts []Verdict
	// Reasons holds an explanation for every False verdict, nil
	// otherwise; parallel to Verdicts.
	Reasons []*Explain
	// Kept and Pruned partition the input cycles.
	Kept, Pruned []*detect.Cycle
}

// Prune applies Algorithm 2 to every cycle, with clocks indexed by
// sim.ThreadID as produced by trace.Trace.Clocks.
func Prune(cycles []*detect.Cycle, clocks []vclock.Vector) *Result {
	return PruneCtx(context.Background(), cycles, clocks)
}

// PruneCtx is Prune with observability: when ctx carries an
// obs.Recorder, one "pruner.prune" span records the number of cycles
// checked and refuted.
func PruneCtx(ctx context.Context, cycles []*detect.Cycle, clocks []vclock.Vector) *Result {
	_, sp := obs.Start(ctx, "pruner.prune")
	defer sp.End()
	sp.Add("cycles", int64(len(cycles)))
	res := &Result{
		Verdicts: make([]Verdict, len(cycles)),
		Reasons:  make([]*Explain, len(cycles)),
	}
	for ci, c := range cycles {
		res.Verdicts[ci], res.Reasons[ci] = pruneOne(c, clocks)
		if res.Verdicts[ci] == False {
			res.Pruned = append(res.Pruned, c)
		} else {
			res.Kept = append(res.Kept, c)
		}
	}
	sp.Add("pruned", int64(len(res.Pruned)))
	return res
}

// pruneOne checks every ordered pair of tuples in the cycle.
func pruneOne(c *detect.Cycle, clocks []vclock.Vector) (Verdict, *Explain) {
	for i, ei := range c.Tuples {
		var vi vclock.Vector
		if int(ei.ThreadID) < len(clocks) {
			vi = clocks[ei.ThreadID]
		}
		for j, ej := range c.Tuples {
			if i == j {
				continue
			}
			p := vi.At(ej.ThreadID)
			// Check 1: tj's acquisition precedes ti's start.
			if p.S != vclock.Bottom && p.S > ej.Tau && ej.Tau != vclock.Bottom {
				return False, &Explain{ThreadA: ei.Thread, ThreadB: ej.Thread, Rule: "start-order"}
			}
			// Check 2: tj joined before ti's acquisition.
			if p.J != vclock.Bottom && p.J <= ei.Tau {
				return False, &Explain{ThreadA: ei.Thread, ThreadB: ej.Thread, Rule: "join-order"}
			}
		}
	}
	return Unknown, nil
}
