package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the campaign results as machine-readable CSV: one row
// per benchmark with both tools' defect and cycle classifications,
// statistics and timings (nanoseconds). Downstream plotting scripts can
// regenerate every figure from this file.
func WriteCSV(w io.Writer, results []*Result) error {
	cw := csv.NewWriter(w)
	header := []string{
		"benchmark", "seed",
		"defects", "fp_pruner", "fp_generator", "tp_wolf", "unk_wolf",
		"tp_df", "unk_df",
		"cycles", "cycles_fp", "cycles_tp_wolf", "cycles_tp_df",
		"slowdown", "sl", "vs",
		"wolf_detect_ns", "wolf_prune_ns", "wolf_generate_ns", "wolf_replay_ns",
		"df_detect_ns", "df_replay_ns",
		"hit_wolf", "hit_df",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		pr, gen, tpW, unkW := r.Wolf.CountDefects()
		_, _, tpD, unkD := r.DF.CountDefects()
		cpr, cgen, ctpW, _ := r.Wolf.CountCycles()
		_, _, ctpD, _ := r.DF.CountCycles()
		row := []string{
			r.Workload.Name,
			strconv.FormatInt(r.Seed, 10),
			strconv.Itoa(len(r.Wolf.Defects)),
			strconv.Itoa(pr), strconv.Itoa(gen), strconv.Itoa(tpW), strconv.Itoa(unkW),
			strconv.Itoa(tpD), strconv.Itoa(unkD),
			strconv.Itoa(len(r.Wolf.Cycles)),
			strconv.Itoa(cpr + cgen), strconv.Itoa(ctpW), strconv.Itoa(ctpD),
			fmt.Sprintf("%.3f", r.Wolf.Timings.DetectionSlowdown()),
			fmt.Sprintf("%.2f", r.Wolf.AvgStackLen()),
			fmt.Sprintf("%.2f", r.Wolf.AvgGsSize()),
			strconv.FormatInt(int64(r.Wolf.Timings.Detect()), 10),
			strconv.FormatInt(int64(r.Wolf.Timings.Prune), 10),
			strconv.FormatInt(int64(r.Wolf.Timings.Generate), 10),
			strconv.FormatInt(int64(r.Wolf.Timings.Replay), 10),
			strconv.FormatInt(int64(r.DF.Timings.Detect()), 10),
			strconv.FormatInt(int64(r.DF.Timings.Replay), 10),
			fmt.Sprintf("%.3f", r.HitWolf),
			fmt.Sprintf("%.3f", r.HitDF),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
