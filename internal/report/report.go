// Package report runs the benchmark suite through both pipelines and
// renders the paper's evaluation artifacts: Table 1 (defect-level
// comparison), Table 2 (cycle-level comparison), Figure 8 (hit rates)
// and Figure 10 (normalized overheads), each with the paper's reported
// numbers alongside the measured ones.
package report

import (
	"fmt"
	"strings"
	"time"

	"wolf/internal/core"
	"wolf/internal/fuzzer"
	"wolf/internal/replay"
	"wolf/internal/workloads"
)

// Config controls a benchmark campaign.
type Config struct {
	// ReplayAttempts is the per-cycle reproduction budget (default 5).
	ReplayAttempts int
	// HitRateRuns is the number of replays per defect for Figure 8
	// (default 100; reduce for quick runs).
	HitRateRuns int
	// SeedTries bounds the search for a terminating detection seed.
	SeedTries int
	// Workloads restricts the campaign to the named benchmarks (all
	// Table 1 rows when empty).
	Workloads []string
}

func (c *Config) fill() {
	if c.ReplayAttempts <= 0 {
		c.ReplayAttempts = 5
	}
	if c.HitRateRuns <= 0 {
		c.HitRateRuns = 100
	}
	if c.SeedTries <= 0 {
		c.SeedTries = 300
	}
}

// Result is one benchmark's outcome under both tools.
type Result struct {
	// Workload is the benchmark.
	Workload workloads.Workload
	// Seed is the detection seed used.
	Seed int64
	// Wolf and DF are the two pipeline reports.
	Wolf, DF *core.Report
	// HitWolf and HitDF are Figure 8 hit rates (set by MeasureHitRates).
	HitWolf, HitDF float64
	// HitMeasured marks whether hit rates were computed.
	HitMeasured bool
}

// Run executes both pipelines on every selected workload.
func Run(cfg Config) ([]*Result, error) {
	cfg.fill()
	selected := workloads.All()
	if len(cfg.Workloads) > 0 {
		selected = selected[:0]
		for _, name := range cfg.Workloads {
			w, ok := workloads.ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown workload %q", name)
			}
			selected = append(selected, w)
		}
	}
	var out []*Result
	for _, w := range selected {
		seed, ok := workloads.FindTerminatingSeed(w.New, cfg.SeedTries)
		if !ok {
			return nil, fmt.Errorf("workload %s: no terminating detection seed in %d tries", w.Name, cfg.SeedTries)
		}
		ccfg := core.Config{DetectSeeds: []int64{seed}, ReplayAttempts: cfg.ReplayAttempts}
		out = append(out, &Result{
			Workload: w,
			Seed:     seed,
			Wolf:     core.Analyze(w.New, ccfg),
			DF:       core.AnalyzeDF(w.New, ccfg),
		})
	}
	return out, nil
}

// MeasureHitRates fills Figure 8 hit rates: for every defect that either
// tool confirmed, each tool replays the defect's first viable cycle
// cfg.HitRateRuns times; the benchmark's rate is the average across
// those defects (defects neither tool ever reproduced carry no signal
// and are excluded, mirroring the paper's per-deadlock averaging).
func MeasureHitRates(results []*Result, cfg Config) {
	cfg.fill()
	for _, r := range results {
		confirmed := confirmedSignatures(r)
		if len(confirmed) == 0 {
			// No reproducible deadlock: the benchmark has no Figure 8
			// bar (like cache4j in the paper).
			continue
		}
		var wolfSum, dfSum float64
		for sig := range confirmed {
			if cr := viableCycle(r.Wolf, sig); cr != nil {
				wolfSum += replay.HitRate(r.Workload.New, cr.Gs, cr.Cycle, cfg.HitRateRuns, replay.Config{})
			}
			if cr := viableCycle(r.DF, sig); cr != nil {
				dfSum += fuzzer.HitRate(r.Workload.New, cr.Cycle, cfg.HitRateRuns, fuzzer.Config{})
			}
		}
		r.HitWolf = wolfSum / float64(len(confirmed))
		r.HitDF = dfSum / float64(len(confirmed))
		r.HitMeasured = true
	}
}

// confirmedSignatures returns defect signatures confirmed by either tool.
func confirmedSignatures(r *Result) map[string]bool {
	out := make(map[string]bool)
	for _, rep := range []*core.Report{r.Wolf, r.DF} {
		for _, d := range rep.Defects {
			if d.Class == core.Confirmed {
				out[d.Signature] = true
			}
		}
	}
	return out
}

// viableCycle returns the defect's first non-false cycle report with a
// usable Gs (for WOLF) or any non-false cycle (for DF).
func viableCycle(rep *core.Report, sig string) *core.CycleReport {
	for _, d := range rep.Defects {
		if d.Signature != sig {
			continue
		}
		for _, cr := range d.Cycles {
			if cr.Class.IsFalse() {
				continue
			}
			if rep.Tool == "wolf" && cr.Gs == nil {
				continue
			}
			return cr
		}
	}
	return nil
}

// Table1 renders the defect-level comparison with the paper's numbers
// in parentheses.
func Table1(results []*Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: defect-level comparison (measured, paper in parentheses)\n")
	fmt.Fprintf(&sb, "%-16s %9s %7s %7s | %-9s %-9s | %-9s %-9s | %-9s %-9s\n",
		"Benchmark", "Slowdown", "SL", "Vs", "Defects", "FP(Pr+Gen)", "TP WOLF", "TP DF", "UNK WOLF", "UNK DF")
	var mDef, mFP, mTPW, mTPD, mUnkW, mUnkD int
	for _, r := range results {
		p := r.Workload.Paper
		pr, gen, tpW, unkW := r.Wolf.CountDefects()
		_, _, tpD, unkD := r.DF.CountDefects()
		fmt.Fprintf(&sb, "%-16s %4.2f%5s %4.1f%3s %4.0f%3s | %3d (%3d) %3d+%d (%d+%d) %4d (%2d) %4d (%2d) %4d (%2d) %4d (%2d)\n",
			r.Workload.Name,
			r.Wolf.Timings.DetectionSlowdown(), paren1(p.Slowdown),
			r.Wolf.AvgStackLen(), "", r.Wolf.AvgGsSize(), "",
			len(r.Wolf.Defects), p.Defects,
			pr, gen, p.FPPruner, p.FPGen,
			tpW, p.TPWolf, tpD, p.TPDF,
			unkW, p.UnkWolf, unkD, p.UnkDF)
		mDef += len(r.Wolf.Defects)
		mFP += pr + gen
		mTPW += tpW
		mTPD += tpD
		mUnkW += unkW
		mUnkD += unkD
	}
	fmt.Fprintf(&sb, "%-16s %s\n", "Cumulative",
		fmt.Sprintf("defects=%d false=%d (%.1f%%) TP-WOLF=%d (%.1f%%) TP-DF=%d (%.1f%%) UNK-WOLF=%d (%.1f%%) UNK-DF=%d (%.1f%%)",
			mDef, mFP, pct(mFP, mDef), mTPW, pct(mTPW, mDef), mTPD, pct(mTPD, mDef),
			mUnkW, pct(mUnkW, mDef), mUnkD, pct(mUnkD, mDef)))
	sb.WriteString("Paper cumulative: defects=65 false=12 (18.5%) TP-WOLF=36 (55.4%) TP-DF=23 (35.4%) UNK-WOLF=17 (26.1%) UNK-DF=42 (64.6%)\n")
	return sb.String()
}

// Table2 renders the cycle-level comparison.
func Table2(results []*Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: cycle-level comparison (measured, paper in parentheses)\n")
	fmt.Fprintf(&sb, "%-16s %-12s | %-12s | %-10s %-10s | %-10s %-10s\n",
		"Benchmark", "Cycles", "FP WOLF", "TP WOLF", "TP DF", "UNK WOLF", "UNK DF")
	var mC, mFP, mTPW, mTPD, mUnkW, mUnkD int
	for _, r := range results {
		p := r.Workload.Paper
		pr, gen, tpW, unkW := r.Wolf.CountCycles()
		_, _, tpD, unkD := r.DF.CountCycles()
		fp := pr + gen
		fmt.Fprintf(&sb, "%-16s %4d (%4d) | %4d (%3d) | %4d (%3d) %4d (%3d) | %4d %4s %4d (%3d)\n",
			r.Workload.Name,
			len(r.Wolf.Cycles), p.Cycles,
			fp, p.CyclesFPWolf,
			tpW, p.CyclesTPWolf, tpD, p.CyclesTPDF,
			unkW, "", unkD, p.Cycles-p.CyclesTPDF)
		mC += len(r.Wolf.Cycles)
		mFP += fp
		mTPW += tpW
		mTPD += tpD
		mUnkW += unkW
		mUnkD += unkD
	}
	fmt.Fprintf(&sb, "Cumulative: cycles=%d FP=%d (%.1f%%) TP-WOLF=%d (%.1f%%) TP-DF=%d (%.1f%%) UNK-WOLF=%d (%.1f%%) UNK-DF=%d (%.1f%%)\n",
		mC, mFP, pct(mFP, mC), mTPW, pct(mTPW, mC), mTPD, pct(mTPD, mC),
		mUnkW, pct(mUnkW, mC), mUnkD, pct(mUnkD, mC))
	sb.WriteString("Paper cumulative: cycles=314 FP=88 (28.0%) TP-WOLF=141 (44.9%) TP-DF=60 (19.1%) UNK-WOLF=85 (27.1%) UNK-DF=254 (80.9%)\n")
	return sb.String()
}

// Fig8 renders the hit-rate comparison as horizontal bars.
func Fig8(results []*Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 8: hit rate of reproducing a deadlock (averaged per potential deadlock)\n")
	for _, r := range results {
		if !r.HitMeasured {
			continue
		}
		p := r.Workload.Paper
		fmt.Fprintf(&sb, "%-16s WOLF %4.2f |%-25s| (paper ≈ %.2f)\n",
			r.Workload.Name, r.HitWolf, bar(r.HitWolf, 25), p.HitWolf)
		fmt.Fprintf(&sb, "%-16s DF   %4.2f |%-25s| (paper ≈ %.2f)\n",
			"", r.HitDF, bar(r.HitDF, 25), p.HitDF)
	}
	return sb.String()
}

// Fig10 renders WOLF's detection and reproduction overheads normalized
// to DeadlockFuzzer's.
func Fig10(results []*Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 10: WOLF time normalized to DeadlockFuzzer (detection incl. Pruner+Generator)\n")
	for _, r := range results {
		det := ratio(
			r.Wolf.Timings.Detect()+r.Wolf.Timings.Prune+r.Wolf.Timings.Generate,
			r.DF.Timings.Detect())
		rep := ratio(r.Wolf.Timings.Replay, r.DF.Timings.Replay)
		fmt.Fprintf(&sb, "%-16s detection %5.2fx |%-20s|  reproduction %5.2fx |%-20s|\n",
			r.Workload.Name, det, bar(det/2.5, 20), rep, bar(rep/2.5, 20))
	}
	sb.WriteString("Paper: detection ≈ 1.1x across benchmarks; reproduction 0.8x–2.1x\n")
	return sb.String()
}

// ratio guards against zero denominators.
func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// bar renders v in [0,1] as a width-w run of '#'.
func bar(v float64, w int) string {
	n := int(v * float64(w))
	if n < 0 {
		n = 0
	}
	if n > w {
		n = w
	}
	return strings.Repeat("#", n)
}

// pct is a safe percentage.
func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// paren1 formats a paper value as "(x.xx)" or blank when absent.
func paren1(v float64) string {
	if v == 0 {
		return ""
	}
	return fmt.Sprintf("(%.2f)", v)
}
