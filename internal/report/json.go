package report

import (
	"time"

	"wolf/internal/core"
	"wolf/internal/fingerprint"
)

// JSONReport is the wire representation of a core.Report, served by the
// wolfd service and stable enough for external tooling: everything is
// plain strings and numbers, classifications use their String() names,
// and durations are nanoseconds.
type JSONReport struct {
	// Tool is the pipeline that produced the report.
	Tool string `json:"tool"`
	// Defects are the signature-grouped verdicts, in triage order.
	Defects []JSONDefect `json:"defects"`
	// Cycles are the per-cycle reports in discovery order.
	Cycles []JSONCycle `json:"cycles"`
	// Timings are the phase durations in nanoseconds.
	Timings JSONTimings `json:"timings"`
}

// JSONDefect is one defect (unique source-location signature).
type JSONDefect struct {
	// Signature is the canonical sorted site list.
	Signature string `json:"signature"`
	// Class is the defect verdict ("confirmed", "false(pruner)", ...).
	Class string `json:"class"`
	// Cycles counts the lock-graph cycles sharing the signature.
	Cycles int `json:"cycles"`
	// ReplayMethod says which pass confirmed the defect ("steering" or
	// "fallback"; empty unless confirmed).
	ReplayMethod string `json:"replay_method,omitempty"`
	// Divergence histograms failed steered attempts by reason for
	// unreproduced defects, e.g. {"max-steps": 2}.
	Divergence map[string]int `json:"divergence,omitempty"`
}

// JSONCycle is one detected potential deadlock.
type JSONCycle struct {
	// Threads are the participating threads, in cycle order.
	Threads []string `json:"threads"`
	// Locks are the locks being acquired, in cycle order.
	Locks []string `json:"locks"`
	// Sites are the deadlocking acquisition sites, in cycle order.
	Sites []string `json:"sites"`
	// Signature is the defect signature the cycle belongs to.
	Signature string `json:"signature"`
	// Fingerprint is the canonical corpus identity of the cycle (see
	// internal/fingerprint): stable across thread IDs and interleavings,
	// so clients can correlate reports with GET /v1/defects/{fp}.
	Fingerprint string `json:"fingerprint"`
	// Class is the cycle verdict.
	Class string `json:"class"`
	// PruneRule explains a false(pruner) verdict, empty otherwise.
	PruneRule string `json:"prune_rule,omitempty"`
	// GsSize is the synchronization dependency graph size (0 if pruned).
	GsSize int `json:"gs_size,omitempty"`
	// HasGraph reports whether a dot rendering is available.
	HasGraph bool `json:"has_graph"`
	// ReplayAttempts counts steered reproduction runs performed.
	ReplayAttempts int `json:"replay_attempts,omitempty"`
	// ReplayMethod says which pass confirmed the cycle, if any.
	ReplayMethod string `json:"replay_method,omitempty"`
	// FallbackAttempts counts PCT-randomized confirmation runs.
	FallbackAttempts int `json:"fallback_attempts,omitempty"`
	// Divergence histograms this cycle's failed steered attempts by
	// reason; non-empty for every unreproduced cycle that was replayed.
	Divergence map[string]int `json:"divergence,omitempty"`
	// Faults counts injected scheduling perturbations, when the analysis
	// ran under fault injection.
	Faults int `json:"faults,omitempty"`
}

// JSONTimings mirrors core.Timings in nanoseconds.
type JSONTimings struct {
	UninstrumentedNs int64 `json:"uninstrumented_ns,omitempty"`
	InstrumentedNs   int64 `json:"instrumented_ns,omitempty"`
	CycleDetectNs    int64 `json:"cycle_detect_ns"`
	PruneNs          int64 `json:"prune_ns"`
	GenerateNs       int64 `json:"generate_ns"`
	ReplayNs         int64 `json:"replay_ns,omitempty"`
}

// FromCore converts a pipeline report into its wire representation.
func FromCore(rep *core.Report) *JSONReport {
	out := &JSONReport{
		Tool:    rep.Tool,
		Defects: []JSONDefect{},
		Cycles:  []JSONCycle{},
		Timings: JSONTimings{
			UninstrumentedNs: int64(rep.Timings.Uninstrumented),
			InstrumentedNs:   int64(rep.Timings.Instrumented),
			CycleDetectNs:    int64(rep.Timings.CycleDetect),
			PruneNs:          int64(rep.Timings.Prune),
			GenerateNs:       int64(rep.Timings.Generate),
			ReplayNs:         int64(rep.Timings.Replay),
		},
	}
	for _, d := range rep.Rank() {
		out.Defects = append(out.Defects, JSONDefect{
			Signature:    d.Signature,
			Class:        d.Class.String(),
			Cycles:       len(d.Cycles),
			ReplayMethod: string(d.Method),
			Divergence:   d.Divergence.ByName(),
		})
	}
	for _, cr := range rep.Cycles {
		jc := JSONCycle{
			Threads:          cr.Cycle.Threads(),
			Locks:            cycleLocks(cr),
			Sites:            cr.Cycle.Sites(),
			Signature:        cr.Cycle.Signature(),
			Fingerprint:      fingerprint.Of(cr.Cycle),
			Class:            cr.Class.String(),
			GsSize:           cr.GsSize,
			HasGraph:         cr.Gs != nil,
			ReplayAttempts:   cr.ReplayAttempts,
			ReplayMethod:     string(cr.ReplayMethod),
			FallbackAttempts: cr.FallbackAttempts,
			Divergence:       cr.Divergence.ByName(),
			Faults:           cr.Faults.Total(),
		}
		if cr.PruneReason != nil {
			jc.PruneRule = cr.PruneReason.Rule
		}
		out.Cycles = append(out.Cycles, jc)
	}
	return out
}

// cycleLocks lists the locks being acquired, in cycle order.
func cycleLocks(cr *core.CycleReport) []string {
	out := make([]string, len(cr.Cycle.Tuples))
	for i, tp := range cr.Cycle.Tuples {
		out[i] = tp.Lock
	}
	return out
}

// Analysis is the total offline analysis time (detect + prune +
// generate) as a duration, for clients and tests.
func (t JSONTimings) Analysis() time.Duration {
	return time.Duration(t.CycleDetectNs + t.PruneNs + t.GenerateNs)
}
