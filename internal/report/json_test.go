package report

import (
	"bytes"
	"encoding/json"
	"testing"

	"wolf/internal/core"
	"wolf/internal/workloads"
)

// TestFromCoreFigure4: the wire view of an offline Figure 4 analysis
// carries both defects with their verdicts and round-trips through
// encoding/json.
func TestFromCoreFigure4(t *testing.T) {
	w, ok := workloads.ByName("Figure4")
	if !ok {
		t.Fatal("Figure4 not registered")
	}
	seed, ok := workloads.FindTerminatingSeed(w.New, 300)
	if !ok {
		t.Fatal("no terminating seed")
	}
	tr := core.Record(w.New, seed, 0)
	rep := core.AnalyzeTrace(tr, core.Config{})

	jr := FromCore(rep)
	if jr.Tool != "wolf(offline)" {
		t.Fatalf("tool = %q", jr.Tool)
	}
	if len(jr.Defects) != 2 {
		t.Fatalf("defects = %d, want 2:\n%v", len(jr.Defects), rep)
	}
	classes := map[string]int{}
	for _, d := range jr.Defects {
		classes[d.Class]++
	}
	// θ1 is refuted by the Pruner; θ2 survives (offline analysis cannot
	// replay, so it stays unknown).
	if classes["false(pruner)"] != 1 || classes["unknown"] != 1 {
		t.Fatalf("defect classes = %v", classes)
	}
	if len(jr.Cycles) != 2 {
		t.Fatalf("cycles = %d, want 2", len(jr.Cycles))
	}
	for _, c := range jr.Cycles {
		if len(c.Threads) == 0 || len(c.Locks) == 0 || c.Signature == "" {
			t.Fatalf("incomplete cycle view: %+v", c)
		}
		if c.Class == "unknown" && !c.HasGraph {
			t.Fatalf("surviving cycle lost its graph: %+v", c)
		}
	}

	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(jr); err != nil {
		t.Fatal(err)
	}
	var back JSONReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Tool != jr.Tool || len(back.Defects) != len(jr.Defects) || len(back.Cycles) != len(jr.Cycles) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Timings.Analysis() <= 0 {
		t.Fatal("timings lost")
	}
}
