package report

import (
	"fmt"
	"strings"

	"wolf/internal/core"
	"wolf/internal/workloads"
)

// ExtResult compares the base pipeline with the value-flow extension on
// one benchmark.
type ExtResult struct {
	// Workload is the benchmark.
	Workload workloads.Workload
	// Base and Ext are the two analyses.
	Base, Ext *core.Report
}

// RunExtension analyzes every selected workload twice: the paper's
// pipeline and the pipeline with the data-dependency extension enabled.
func RunExtension(cfg Config) ([]*ExtResult, error) {
	cfg.fill()
	selected := workloads.All()
	if len(cfg.Workloads) > 0 {
		selected = selected[:0]
		for _, name := range cfg.Workloads {
			w, ok := workloads.ByName(name)
			if !ok {
				return nil, fmt.Errorf("unknown workload %q", name)
			}
			selected = append(selected, w)
		}
	}
	var out []*ExtResult
	for _, w := range selected {
		seed, ok := workloads.FindTerminatingSeed(w.New, cfg.SeedTries)
		if !ok {
			return nil, fmt.Errorf("workload %s: no terminating detection seed", w.Name)
		}
		base := core.Config{DetectSeeds: []int64{seed}, ReplayAttempts: cfg.ReplayAttempts}
		ext := base
		ext.DataDependency = true
		out = append(out, &ExtResult{
			Workload: w,
			Base:     core.Analyze(w.New, base),
			Ext:      core.Analyze(w.New, ext),
		})
	}
	return out, nil
}

// TableExt renders the extension comparison: per benchmark, how many
// defects each configuration leaves unknown (the manual-comprehension
// burden the paper wants to minimize) and where the difference went.
func TableExt(results []*ExtResult) string {
	var sb strings.Builder
	sb.WriteString("Extension: value-flow (data dependency) refutation — paper §4.4 future work\n")
	fmt.Fprintf(&sb, "%-16s | %-22s | %-22s | %s\n",
		"Benchmark", "base unk/conf/false", "ext unk/conf/false", "newly refuted by data")
	var totBaseUnk, totExtUnk int
	for _, r := range results {
		bPr, bGen, bConf, bUnk := r.Base.CountDefects()
		ePr, eGen, eConf, eUnk := r.Ext.CountDefects()
		data := 0
		for _, d := range r.Ext.Defects {
			if d.Class == core.FalseByData {
				data++
			}
		}
		fmt.Fprintf(&sb, "%-16s | %3d / %3d / %3d        | %3d / %3d / %3d        | %d\n",
			r.Workload.Name, bUnk, bConf, bPr+bGen, eUnk, eConf, ePr+eGen, data)
		totBaseUnk += bUnk
		totExtUnk += eUnk
	}
	fmt.Fprintf(&sb, "Unknown defects left for manual analysis: %d → %d\n", totBaseUnk, totExtUnk)
	return sb.String()
}
