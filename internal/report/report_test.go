package report

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
	"time"

	"wolf/internal/core"
)

// runSubset runs a cheap two-benchmark campaign.
func runSubset(t *testing.T) []*Result {
	t.Helper()
	results, err := Run(Config{
		Workloads:      []string{"HashMap", "JavaLogging"},
		ReplayAttempts: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	return results
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run(Config{Workloads: []string{"missing"}}); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestTable1Rendering(t *testing.T) {
	results := runSubset(t)
	out := Table1(results)
	for _, want := range []string{"HashMap", "JavaLogging", "Cumulative", "Paper cumulative", "Slowdown"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	results := runSubset(t)
	out := Table2(results)
	for _, want := range []string{"Cycles", "HashMap", "Cumulative"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig8Rendering(t *testing.T) {
	results := runSubset(t)
	MeasureHitRates(results, Config{HitRateRuns: 10})
	out := Fig8(results)
	if !strings.Contains(out, "WOLF") || !strings.Contains(out, "DF") {
		t.Fatalf("Fig8 output malformed:\n%s", out)
	}
	for _, r := range results {
		if !r.HitMeasured {
			t.Error("hit rates not measured")
		}
		if r.HitWolf < r.HitDF {
			t.Errorf("%s: WOLF hit rate %.2f below DF %.2f", r.Workload.Name, r.HitWolf, r.HitDF)
		}
		if r.HitWolf <= 0 {
			t.Errorf("%s: WOLF hit rate is zero", r.Workload.Name)
		}
	}
}

func TestFig10Rendering(t *testing.T) {
	results := runSubset(t)
	out := Fig10(results)
	if !strings.Contains(out, "detection") || !strings.Contains(out, "reproduction") {
		t.Fatalf("Fig10 output malformed:\n%s", out)
	}
}

func TestViableCycleSkipsFalse(t *testing.T) {
	results := runSubset(t)
	for _, r := range results {
		for _, d := range r.Wolf.Defects {
			if d.Class != core.Confirmed {
				continue
			}
			cr := viableCycle(r.Wolf, d.Signature)
			if cr == nil {
				t.Errorf("%s: no viable cycle for confirmed defect %s", r.Workload.Name, d.Signature)
				continue
			}
			if cr.Class.IsFalse() || cr.Gs == nil {
				t.Errorf("%s: viable cycle is unusable", r.Workload.Name)
			}
		}
	}
}

func TestHelpers(t *testing.T) {
	if got := bar(0.5, 10); got != "#####" {
		t.Errorf("bar(0.5,10) = %q", got)
	}
	if got := bar(-1, 10); got != "" {
		t.Errorf("bar(-1,10) = %q", got)
	}
	if got := bar(2, 10); got != "##########" {
		t.Errorf("bar(2,10) = %q", got)
	}
	if pct(1, 0) != 0 || pct(1, 2) != 50 {
		t.Error("pct wrong")
	}
	if ratio(time.Second, 0) != 0 || ratio(time.Second, time.Second) != 1 {
		t.Error("ratio wrong")
	}
}

// TestWriteCSV: the CSV has one row per benchmark plus a header, and
// the classification columns match the reports.
func TestWriteCSV(t *testing.T) {
	results := runSubset(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(results)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(results)+1)
	}
	if rows[0][0] != "benchmark" {
		t.Fatalf("header = %v", rows[0])
	}
	for i, r := range results {
		row := rows[i+1]
		if row[0] != r.Workload.Name {
			t.Errorf("row %d benchmark = %s", i, row[0])
		}
		if row[2] != strconv.Itoa(len(r.Wolf.Defects)) {
			t.Errorf("row %d defects = %s, want %d", i, row[2], len(r.Wolf.Defects))
		}
	}
}

// TestExtensionTable: the extension run renders and the Jigsaw unknowns
// collapse (when included); on benchmarks without data flags the two
// configurations agree.
func TestExtensionTable(t *testing.T) {
	results, err := RunExtension(Config{Workloads: []string{"HashMap"}, ReplayAttempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := TableExt(results)
	if !strings.Contains(out, "HashMap") || !strings.Contains(out, "Unknown defects") {
		t.Fatalf("malformed table:\n%s", out)
	}
	_, _, bConf, bUnk := results[0].Base.CountDefects()
	_, _, eConf, eUnk := results[0].Ext.CountDefects()
	if bConf != eConf || bUnk != eUnk {
		t.Fatalf("extension changed HashMap verdicts: %d/%d vs %d/%d", bConf, bUnk, eConf, eUnk)
	}
}
