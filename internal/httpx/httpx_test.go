package httpx

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// countingServer fails the first n requests with status, then succeeds
// with 200 echoing the request body.
func countingServer(t *testing.T, n int, status int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c := calls.Add(1)
		body, _ := io.ReadAll(r.Body)
		if c <= int64(n) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// sleepSpy records requested sleeps without actually sleeping.
func sleepSpy() (func(time.Duration), *[]time.Duration) {
	var slept []time.Duration
	return func(d time.Duration) { slept = append(slept, d) }, &slept
}

func TestRetriesTransientStatuses(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable} {
		ts, calls := countingServer(t, 2, status, "")
		sleep, slept := sleepSpy()
		c := &Client{MaxAttempts: 4, Sleep: sleep}
		resp, err := c.Get(ts.URL)
		if err != nil {
			t.Fatalf("status %d: %v", status, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: final = %d, want 200", status, resp.StatusCode)
		}
		if got := calls.Load(); got != 3 {
			t.Fatalf("status %d: calls = %d, want 3", status, got)
		}
		if len(*slept) != 2 {
			t.Fatalf("status %d: slept %d times, want 2", status, len(*slept))
		}
	}
}

func TestRetriesExhaustedReturnsResponse(t *testing.T) {
	ts, calls := countingServer(t, 100, http.StatusServiceUnavailable, "")
	sleep, _ := sleepSpy()
	c := &Client{MaxAttempts: 3, Sleep: sleep}
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("final = %d, want the server's 503", resp.StatusCode)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("calls = %d, want MaxAttempts=3", got)
	}
}

func TestNoRetryOnOtherStatuses(t *testing.T) {
	ts, calls := countingServer(t, 100, http.StatusBadRequest, "")
	c := &Client{MaxAttempts: 4, Sleep: func(time.Duration) {}}
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("calls = %d, want 1 (400 is not retryable)", got)
	}
}

func TestHonorsRetryAfterSeconds(t *testing.T) {
	ts, _ := countingServer(t, 1, http.StatusTooManyRequests, "7")
	sleep, slept := sleepSpy()
	c := &Client{MaxAttempts: 4, Sleep: sleep}
	resp, err := c.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(*slept) != 1 || (*slept)[0] != 7*time.Second {
		t.Fatalf("slept = %v, want exactly [7s] from Retry-After", *slept)
	}
}

func TestBackoffGrowsAndIsJittered(t *testing.T) {
	c := &Client{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for i, wantMax := range []time.Duration{100, 200, 400, 800, 1000, 1000} {
		wantMax *= time.Millisecond
		d := c.backoff(i, nil)
		if d < wantMax/2 || d > wantMax {
			t.Fatalf("backoff(%d) = %v, want in [%v, %v]", i, d, wantMax/2, wantMax)
		}
	}
}

func TestBodyRewindAcrossRetries(t *testing.T) {
	ts, _ := countingServer(t, 2, http.StatusServiceUnavailable, "")
	sleep, _ := sleepSpy()
	c := &Client{MaxAttempts: 4, Sleep: sleep}
	resp, err := c.Post(ts.URL, "application/octet-stream", []byte("payload-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	echo, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(echo) != "payload-bytes" {
		t.Fatalf("echoed body = %q; retry did not rewind the request body", echo)
	}
}

func TestTransportErrorRetryGating(t *testing.T) {
	// A server that is immediately closed produces connection errors.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()

	sleep, slept := sleepSpy()
	c := &Client{MaxAttempts: 3, Sleep: sleep}
	if _, err := c.Get(url); err == nil {
		t.Fatal("want transport error")
	}
	if len(*slept) != 0 {
		t.Fatalf("slept %v without RetryConnect", *slept)
	}

	c.RetryConnect = true
	if _, err := c.Get(url); err == nil {
		t.Fatal("want transport error")
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2 (MaxAttempts-1) with RetryConnect", len(*slept))
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d, ok := parseRetryAfter("3"); !ok || d != 3*time.Second {
		t.Fatalf("seconds form: %v %v", d, ok)
	}
	if _, ok := parseRetryAfter(""); ok {
		t.Fatal("empty header parsed")
	}
	if _, ok := parseRetryAfter("soon"); ok {
		t.Fatal("garbage header parsed")
	}
	at := time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)
	if d, ok := parseRetryAfter(at); !ok || d <= 0 || d > 2*time.Second {
		t.Fatalf("date form: %v %v", d, ok)
	}
}

func TestDoRequiresRewindableBodyOnConnectRetry(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()
	c := &Client{MaxAttempts: 3, RetryConnect: true, Sleep: func(time.Duration) {}}
	// io.Reader (not bytes.Reader) leaves GetBody nil: one attempt only.
	req, err := http.NewRequest(http.MethodPost, url, io.MultiReader(bytes.NewReader([]byte("x"))))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(req); err == nil {
		t.Fatal("want transport error")
	}
}
