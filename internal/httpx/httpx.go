// Package httpx is the shared retrying HTTP client used by every WOLF
// component that talks to a wolfd endpoint: wolfctl subcommands and the
// fleet analyzer both route their calls through it instead of bare
// one-shot net/http requests.
//
// Retry policy:
//
//   - Responses wolfd uses for load shedding and transient unavailability
//     (429, 502, 503) are retried with exponential backoff plus jitter.
//     A Retry-After header (seconds or HTTP date) overrides the computed
//     backoff, so a shedding server paces its own clients.
//   - Transport errors (connection refused, reset) are retried only when
//     the caller opts in with RetryConnect — the request may have been
//     processed before the connection died, so only callers whose
//     requests are idempotent or deduplicated downstream (the fleet
//     protocol, content-addressed uploads) should enable it.
//   - Everything else (including 4xx/5xx outside the set above) is
//     returned to the caller on the first attempt.
//
// The final response is always returned even when retries are
// exhausted, so callers can render the server's error body.
package httpx

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Client is a retrying HTTP client. The zero value is usable; Fill in
// fields to tune.
type Client struct {
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// MaxAttempts bounds total tries per request (default 4).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 100ms); each retry
	// doubles it, capped at MaxDelay (default 5s). The actual sleep is
	// jittered uniformly in [delay/2, delay).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// RetryConnect also retries transport-level failures, not just
	// retryable status codes. Enable only when a duplicated request is
	// harmless (see the package comment).
	RetryConnect bool
	// Sleep is the wait hook (tests); default time.Sleep.
	Sleep func(time.Duration)
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 4
}

func (c *Client) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Retryable reports whether a status code is in the transient set wolfd
// emits for shedding and unavailability.
func Retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// backoff computes the jittered sleep before attempt i (0-based retry
// count), honoring a Retry-After header when the server sent one.
func (c *Client) backoff(i int, resp *http.Response) time.Duration {
	if resp != nil {
		if d, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
			return d
		}
	}
	base := c.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := c.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << uint(i)
	if d > max || d <= 0 {
		d = max
	}
	// Full jitter over the top half keeps retries spread without ever
	// collapsing to zero.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// parseRetryAfter accepts the delta-seconds and HTTP-date forms.
func parseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// Do executes the request, retrying per the policy above. Requests with
// a body must be rewindable (req.GetBody set — http.NewRequest does this
// automatically for bytes.Reader/bytes.Buffer/strings.Reader bodies).
func (c *Client) Do(req *http.Request) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		if attempt > 0 && req.GetBody != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, fmt.Errorf("httpx: rewind request body: %w", err)
			}
			req.Body = body
		}
		resp, err := c.http().Do(req)
		if err != nil {
			if !c.RetryConnect || attempt+1 >= c.attempts() {
				return nil, err
			}
			if req.Body != nil && req.GetBody == nil {
				return nil, err // cannot rewind; don't resend half a body
			}
			c.sleep(c.backoff(attempt, nil))
			continue
		}
		if !Retryable(resp.StatusCode) || attempt+1 >= c.attempts() {
			return resp, nil
		}
		wait := c.backoff(attempt, resp)
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		c.sleep(wait)
	}
}

// Get issues a retried GET.
func (c *Client) Get(url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}

// Post issues a retried POST with an in-memory (rewindable) body.
func (c *Client) Post(url, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return c.Do(req)
}
