// Package replay implements WOLF's Replayer (Algorithm 4 of the paper):
// it re-executes a program while steering the schedule so the
// synchronization dependency graph Gs of a potential deadlock is
// satisfied, which drives the execution into the deadlock and confirms
// the defect automatically.
//
// The Replayer monitors only the k threads of the k-thread cycle
// (matching the paper's implementation note in Section 4): other threads
// run freely. A cycle thread about to acquire a lock whose Gs vertex
// still has an unsatisfied cross-thread dependency is paused; once the
// dependency's source acquisition executes (or is skipped by divergent
// control flow) the vertex is pruned and the thread released. If every
// runnable thread is paused, a random one is force-released to guarantee
// progress.
package replay

import (
	"context"
	"math/rand"
	"sort"

	"wolf/internal/detect"
	"wolf/internal/obs"
	"wolf/internal/sdg"
	"wolf/internal/trace"
	"wolf/sim"
)

// DefaultAttempts is the pre-determined number of replay trials before a
// defect is left for manual comprehension.
const DefaultAttempts = 5

// Factory produces a fresh program and options for one run. Workload
// state must be rebuilt on every call so replays are independent.
type Factory = sim.Factory

// Config controls reproduction.
type Config struct {
	// Attempts is the number of replay trials; DefaultAttempts when zero.
	Attempts int
	// BaseSeed seeds the replayer's tie-breaking randomness; attempt i
	// uses BaseSeed + i.
	BaseSeed int64
	// MaxSteps bounds each replay run (sim.DefaultMaxSteps when zero).
	MaxSteps int
	// EdgeKinds restricts which Gs edge kinds steer the replay
	// (sdg.AllKinds when zero); used by ablation benchmarks.
	EdgeKinds sdg.Kind
}

// Result reports a reproduction attempt series.
type Result struct {
	// Reproduced is true when some attempt deadlocked at the cycle's
	// source locations.
	Reproduced bool
	// Attempts is the number of runs executed (stops early on success).
	Attempts int
	// Hits counts successful attempts (equals 0 or 1 unless RunAll).
	Hits int
	// LastOutcome is the outcome of the final attempt.
	LastOutcome *sim.Outcome
}

// strategy implements sim.Strategy and sim.Listener for one replay run.
type strategy struct {
	g       *sdg.Graph
	inCycle map[string]bool
	rng     *rand.Rand
	// occ mirrors the trace recorder's per-thread per-site occurrence
	// counters so pending acquisitions map to the same stable keys the
	// Gs vertices carry.
	occ map[string]map[string]int
	// forced counts force-releases (diagnostics: nonzero means Gs could
	// not be followed exactly).
	forced int
	// tl, when non-nil, receives the steering decisions the replayer
	// enforces — "paused" slices while a cycle thread is held back on an
	// unsatisfied Gs dependency, and force-release markers — on the
	// thread tracks of TimelinePid. This is the schedule the replayer
	// actually imposed, viewable in Perfetto next to the executed ops.
	tl     *obs.Timeline
	tlPid  int64
	paused map[string]bool
	tids   map[string]int64
}

// pauseMark opens or closes a "paused" slice for thread t as its
// steering state flips. ts is the sim step counter (the logical clock
// every timeline track shares).
func (s *strategy) pauseMark(t *sim.Thread, site string, ts int64, nowPaused bool) {
	if s.tl == nil || s.paused[t.Name()] == nowPaused {
		return
	}
	s.paused[t.Name()] = nowPaused
	tid := int64(t.ID()) + 1
	s.tids[t.Name()] = tid
	if nowPaused {
		s.tl.Begin(s.tlPid, tid, "paused", "replay",
			ts, map[string]any{"site": site})
	} else {
		s.tl.End(s.tlPid, tid, ts)
	}
}

// Pick implements Algorithm 4's scheduling: cycle threads whose next
// acquisition has an unsatisfied cross-thread dependency are paused;
// everything else is fair game. If only paused threads remain, one is
// released at random.
func (s *strategy) Pick(w *sim.World, enabled []*sim.Thread) *sim.Thread {
	ts := int64(w.Step())
	var allowed, paused []*sim.Thread
	for _, t := range enabled {
		if op := t.Pending(); s.inCycle[t.Name()] && isSteerable(op) && !(isAcquire(op) && t.Holds(op.Lock)) {
			key := trace.NextKey(s.occ, t.Name(), op.Site)
			if s.g.Blocked(key) {
				s.pauseMark(t, op.Site, ts, true)
				paused = append(paused, t)
				continue
			}
		}
		s.pauseMark(t, "", ts, false)
		allowed = append(allowed, t)
	}
	if len(allowed) == 0 {
		// Algorithm 4 lines 5-7: release a random paused thread so the
		// run cannot get stuck on unsatisfiable dependencies.
		s.forced++
		pick := paused[s.rng.Intn(len(paused))]
		s.pauseMark(pick, "", ts, false)
		if s.tl != nil {
			s.tl.Instant(s.tlPid, int64(pick.ID())+1, "force-release", "replay", ts, "t", nil)
		}
		return pick
	}
	return allowed[s.rng.Intn(len(allowed))]
}

// OnEvent prunes Gs as the run progresses: an executed acquisition of a
// cycle thread removes its vertex and everything that had to precede it
// (executed or skipped); a terminated cycle thread releases all its
// remaining vertices.
func (s *strategy) OnEvent(ev sim.Event) {
	name := ev.Thread.Name()
	if !s.inCycle[name] {
		return
	}
	switch ev.Op.Kind {
	case sim.OpLock, sim.OpWaitResume:
		if ev.Reentrant {
			return
		}
		s.g.Executed(trace.CountKey(s.occ, name, ev.Op.Site))
	case sim.OpLoad, sim.OpStore:
		// Data vertices exist only in graphs built with type-V edges;
		// Executed is a no-op otherwise.
		s.g.Executed(trace.CountKey(s.occ, name, ev.Op.Site))
	case sim.OpExit, sim.OpPanic:
		s.g.RemoveThread(name)
	}
}

// isAcquire reports whether op blocks on a lock acquisition (a plain
// Lock or a post-notification monitor reacquisition).
func isAcquire(op sim.Op) bool {
	return op.Kind == sim.OpLock || op.Kind == sim.OpWaitResume
}

// isSteerable reports whether the replayer may pause a thread before op
// to satisfy a Gs dependency: lock acquisitions always; loads when the
// graph carries value-flow vertices for them.
func isSteerable(op sim.Op) bool {
	return isAcquire(op) || op.Kind == sim.OpLoad
}

// Attempt performs one steered re-execution and returns its outcome.
// g is cloned; the caller's graph is not mutated.
func Attempt(f Factory, g *sdg.Graph, cycle *detect.Cycle, seed int64, maxSteps int) *sim.Outcome {
	return AttemptObserved(f, g, cycle, seed, maxSteps, Observer{})
}

// Observer wires observability into one replay attempt.
type Observer struct {
	// Timeline, when non-nil, receives the replayer's steering decisions
	// (pause slices and force-release markers) on the thread tracks of
	// Pid, timestamped with the sim step counter.
	Timeline *obs.Timeline
	// Pid is the trace-event process the markers belong to (the caller
	// puts the executed-operation tracks of the same run under the same
	// pid).
	Pid int64
	// Listeners are appended to the run's listener list, after the
	// steering strategy — a timeline listener here sees events with the
	// same step clock the markers use.
	Listeners []sim.Listener
}

// AttemptObserved is Attempt with steering markers and extra listeners;
// see Observer. Any pause slice still open when the run stops (a thread
// held back right into the deadlock) is closed at the final step so the
// exported timeline stays balanced.
func AttemptObserved(f Factory, g *sdg.Graph, cycle *detect.Cycle, seed int64, maxSteps int, o Observer) *sim.Outcome {
	prog, opts := f()
	st := &strategy{
		g:       g.Clone(),
		inCycle: make(map[string]bool, len(cycle.Tuples)),
		rng:     rand.New(rand.NewSource(seed)),
		occ:     make(map[string]map[string]int),
		tl:      o.Timeline,
		tlPid:   o.Pid,
		paused:  make(map[string]bool),
		tids:    make(map[string]int64),
	}
	for _, tp := range cycle.Tuples {
		st.inCycle[tp.Thread] = true
	}
	opts.Listeners = append(opts.Listeners, st)
	opts.Listeners = append(opts.Listeners, o.Listeners...)
	if maxSteps > 0 {
		opts.MaxSteps = maxSteps
	}
	out := sim.Run(prog, st, opts)
	if st.tl != nil {
		// Deterministic close order so exports are golden-testable.
		var open []string
		for name, isPaused := range st.paused {
			if isPaused {
				open = append(open, name)
			}
		}
		sort.Strings(open)
		for _, name := range open {
			st.tl.End(st.tlPid, st.tids[name], int64(out.Steps))
		}
	}
	return out
}

// Hit reports whether out reproduced the cycle: the run deadlocked and
// for every deadlocking acquisition of the cycle a distinct thread is
// blocked acquiring the same lock from the same source location (the
// paper's hit criterion — deadlocking "at the exact location"; a
// deadlock at other sites is not a hit).
func Hit(out *sim.Outcome, cycle *detect.Cycle) bool {
	if !out.Deadlocked() {
		return false
	}
	type need struct{ site, lock string }
	avail := make(map[need]int)
	for _, b := range out.Blocked {
		if b.Op.Kind == sim.OpLock {
			avail[need{b.Op.Site, b.Op.Lock.Name()}]++
		}
	}
	for _, tp := range cycle.Tuples {
		k := need{tp.Site, tp.Lock}
		if avail[k] == 0 {
			return false
		}
		avail[k]--
	}
	return true
}

// Reproduce runs up to cfg.Attempts steered executions, stopping at the
// first hit.
func Reproduce(f Factory, g *sdg.Graph, cycle *detect.Cycle, cfg Config) Result {
	return ReproduceCtx(context.Background(), f, g, cycle, cfg)
}

// ReproduceCtx is Reproduce with observability: when ctx carries an
// obs.Recorder, every steered re-execution emits a "replay.attempt"
// span recording its step count and whether it hit — the data behind
// replay-convergence statistics.
func ReproduceCtx(ctx context.Context, f Factory, g *sdg.Graph, cycle *detect.Cycle, cfg Config) Result {
	attempts := cfg.Attempts
	if attempts <= 0 {
		attempts = DefaultAttempts
	}
	var res Result
	for i := 0; i < attempts; i++ {
		_, sp := obs.Start(ctx, "replay.attempt")
		out := Attempt(f, g, cycle, cfg.BaseSeed+int64(i), cfg.MaxSteps)
		res.Attempts++
		res.LastOutcome = out
		hit := Hit(out, cycle)
		if sp != nil {
			sp.Add("steps", int64(out.Steps))
			if hit {
				sp.Add("hit", 1)
			}
			sp.End()
		}
		if hit {
			res.Reproduced = true
			res.Hits++
			return res
		}
	}
	return res
}

// HitRate runs exactly runs attempts without early exit and returns the
// fraction that reproduced the cycle — the paper's Figure 8 statistic
// (hit rate over 100 runs per potential deadlock).
func HitRate(f Factory, g *sdg.Graph, cycle *detect.Cycle, runs int, cfg Config) float64 {
	if runs <= 0 {
		return 0
	}
	hits := 0
	for i := 0; i < runs; i++ {
		out := Attempt(f, g, cycle, cfg.BaseSeed+int64(i), cfg.MaxSteps)
		if Hit(out, cycle) {
			hits++
		}
	}
	return float64(hits) / float64(runs)
}
