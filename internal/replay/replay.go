// Package replay implements WOLF's Replayer (Algorithm 4 of the paper):
// it re-executes a program while steering the schedule so the
// synchronization dependency graph Gs of a potential deadlock is
// satisfied, which drives the execution into the deadlock and confirms
// the defect automatically.
//
// The Replayer monitors only the k threads of the k-thread cycle
// (matching the paper's implementation note in Section 4): other threads
// run freely. A cycle thread about to acquire a lock whose Gs vertex
// still has an unsatisfied cross-thread dependency is paused; once the
// dependency's source acquisition executes (or is skipped by divergent
// control flow) the vertex is pruned and the thread released. If every
// runnable thread is paused, a random one is force-released to guarantee
// progress.
package replay

import (
	"context"
	"math/rand"
	"sort"

	"wolf/internal/detect"
	"wolf/internal/obs"
	"wolf/internal/sdg"
	"wolf/internal/trace"
	"wolf/sim"
)

// DefaultAttempts is the pre-determined number of replay trials before a
// defect is left for manual comprehension.
const DefaultAttempts = 5

// DefaultFallbackAttempts is the PCT-randomized confirmation budget used
// once every steered attempt has diverged.
const DefaultFallbackAttempts = 3

// maxStepEscalation caps the step-budget growth across retries at
// base·2^maxStepEscalation.
const maxStepEscalation = 3

// Factory produces a fresh program and options for one run. Workload
// state must be rebuilt on every call so replays are independent.
type Factory = sim.Factory

// Config controls reproduction.
type Config struct {
	// Attempts is the number of steered replay trials; DefaultAttempts
	// when zero.
	Attempts int
	// BaseSeed seeds the replayer's tie-breaking randomness; attempt i
	// uses BaseSeed + i, and fallback runs continue the sequence.
	BaseSeed int64
	// MaxSteps bounds each replay run (sim.DefaultMaxSteps when zero).
	// Attempts that exhaust the budget escalate it (doubling, capped at
	// 2^3·MaxSteps) on the next trial.
	MaxSteps int
	// EdgeKinds restricts which Gs edge kinds steer the replay
	// (sdg.AllKinds when zero); used by ablation benchmarks.
	EdgeKinds sdg.Kind
	// Faults injects deterministic scheduling perturbations into every
	// attempt (steered and fallback); the zero value injects nothing.
	Faults sim.FaultConfig
	// FallbackAttempts is the PCT-randomized confirmation budget used
	// when all steered attempts diverge (DefaultFallbackAttempts when
	// zero; negative disables the fallback pass).
	FallbackAttempts int
}

// fallbackAttempts resolves the fallback budget.
func (cfg Config) fallbackAttempts() int {
	if cfg.FallbackAttempts < 0 {
		return 0
	}
	if cfg.FallbackAttempts == 0 {
		return DefaultFallbackAttempts
	}
	return cfg.FallbackAttempts
}

// Result reports a reproduction attempt series.
type Result struct {
	// Reproduced is true when some attempt deadlocked at the cycle's
	// source locations.
	Reproduced bool
	// Attempts is the number of steered runs executed (stops early on
	// success).
	Attempts int
	// Hits counts successful attempts (equals 0 or 1 unless RunAll).
	Hits int
	// LastOutcome is the outcome of the final attempt.
	LastOutcome *sim.Outcome
	// Method says which pass confirmed the cycle: MethodSteering,
	// MethodFallback, or MethodNone when unreproduced.
	Method Method
	// FallbackAttempts counts PCT-randomized confirmation runs executed.
	FallbackAttempts int
	// Divergence histograms the failed steered attempts by reason; every
	// unreproduced result carries a non-empty histogram.
	Divergence Divergence
	// Faults aggregates the scheduling perturbations injected across all
	// attempts (zero when injection is disabled).
	Faults sim.FaultStats
}

// strategy implements sim.Strategy and sim.Listener for one replay run.
type strategy struct {
	g       *sdg.Graph
	inCycle map[string]bool
	rng     *rand.Rand
	// inner, when non-nil, makes the final choice among the allowed
	// (non-paused) threads — the fault injector plugs in here, so
	// perturbations reorder what steering permits but can never run a
	// thread the replayer is holding back (a real scheduler cannot
	// preempt into a thread the tool keeps blocked either).
	inner sim.Strategy
	// occ mirrors the trace recorder's per-thread per-site occurrence
	// counters so pending acquisitions map to the same stable keys the
	// Gs vertices carry.
	occ map[string]map[string]int
	// forced counts force-releases (diagnostics: nonzero means Gs could
	// not be followed exactly).
	forced int
	// tl, when non-nil, receives the steering decisions the replayer
	// enforces — "paused" slices while a cycle thread is held back on an
	// unsatisfied Gs dependency, and force-release markers — on the
	// thread tracks of TimelinePid. This is the schedule the replayer
	// actually imposed, viewable in Perfetto next to the executed ops.
	tl     *obs.Timeline
	tlPid  int64
	paused map[string]bool
	tids   map[string]int64
}

// pauseMark records thread t's steering state flip — the paused map
// feeds divergence classification — and, when a timeline is attached,
// opens or closes a "paused" slice. ts is the sim step counter (the
// logical clock every timeline track shares).
func (s *strategy) pauseMark(t *sim.Thread, site string, ts int64, nowPaused bool) {
	if s.paused[t.Name()] == nowPaused {
		return
	}
	s.paused[t.Name()] = nowPaused
	if s.tl == nil {
		return
	}
	tid := int64(t.ID()) + 1
	s.tids[t.Name()] = tid
	if nowPaused {
		s.tl.Begin(s.tlPid, tid, "paused", "replay",
			ts, map[string]any{"site": site})
	} else {
		s.tl.End(s.tlPid, tid, ts)
	}
}

// pausedCount returns how many cycle threads are currently held back on
// an unsatisfied Gs dependency.
func (s *strategy) pausedCount() int {
	n := 0
	for _, isPaused := range s.paused {
		if isPaused {
			n++
		}
	}
	return n
}

// Pick implements Algorithm 4's scheduling: cycle threads whose next
// acquisition has an unsatisfied cross-thread dependency are paused;
// everything else is fair game. If only paused threads remain, one is
// released at random.
func (s *strategy) Pick(w *sim.World, enabled []*sim.Thread) *sim.Thread {
	ts := int64(w.Step())
	var allowed, paused []*sim.Thread
	for _, t := range enabled {
		if op := t.Pending(); s.inCycle[t.Name()] && isSteerable(op) && !(isAcquire(op) && t.Holds(op.Lock)) {
			key := trace.NextKey(s.occ, t.Name(), op.Site)
			if s.g.Blocked(key) {
				s.pauseMark(t, op.Site, ts, true)
				paused = append(paused, t)
				continue
			}
		}
		s.pauseMark(t, "", ts, false)
		allowed = append(allowed, t)
	}
	if len(allowed) == 0 {
		// Algorithm 4 lines 5-7: release a random paused thread so the
		// run cannot get stuck on unsatisfiable dependencies.
		s.forced++
		pick := paused[s.rng.Intn(len(paused))]
		s.pauseMark(pick, "", ts, false)
		if s.tl != nil {
			s.tl.Instant(s.tlPid, int64(pick.ID())+1, "force-release", "replay", ts, "t", nil)
		}
		return pick
	}
	if s.inner != nil {
		if t := s.inner.Pick(w, allowed); t != nil {
			return t
		}
	}
	return allowed[s.rng.Intn(len(allowed))]
}

// OnEvent prunes Gs as the run progresses: an executed acquisition of a
// cycle thread removes its vertex and everything that had to precede it
// (executed or skipped); a terminated cycle thread releases all its
// remaining vertices.
func (s *strategy) OnEvent(ev sim.Event) {
	name := ev.Thread.Name()
	if !s.inCycle[name] {
		return
	}
	switch ev.Op.Kind {
	case sim.OpLock, sim.OpWaitResume:
		if ev.Reentrant {
			return
		}
		s.g.Executed(trace.CountKey(s.occ, name, ev.Op.Site))
	case sim.OpLoad, sim.OpStore:
		// Data vertices exist only in graphs built with type-V edges;
		// Executed is a no-op otherwise.
		s.g.Executed(trace.CountKey(s.occ, name, ev.Op.Site))
	case sim.OpExit, sim.OpPanic:
		s.g.RemoveThread(name)
	}
}

// isAcquire reports whether op blocks on a lock acquisition (a plain
// Lock or a post-notification monitor reacquisition).
func isAcquire(op sim.Op) bool {
	return op.Kind == sim.OpLock || op.Kind == sim.OpWaitResume
}

// isSteerable reports whether the replayer may pause a thread before op
// to satisfy a Gs dependency: lock acquisitions always; loads when the
// graph carries value-flow vertices for them.
func isSteerable(op sim.Op) bool {
	return isAcquire(op) || op.Kind == sim.OpLoad
}

// Attempt performs one steered re-execution and returns its outcome.
// g is cloned; the caller's graph is not mutated.
func Attempt(f Factory, g *sdg.Graph, cycle *detect.Cycle, seed int64, maxSteps int) *sim.Outcome {
	return AttemptObserved(f, g, cycle, seed, maxSteps, Observer{})
}

// AttemptResult is the classified outcome of one steered attempt.
type AttemptResult struct {
	// Outcome is the raw run outcome.
	Outcome *sim.Outcome
	// Hit reports whether the run deadlocked at the recorded sites.
	Hit bool
	// Reason classifies a miss (DivergenceNone when Hit).
	Reason DivergenceReason
	// Forced counts force-releases (Algorithm 4 lines 5-7 firings).
	Forced int
	// Remaining is the number of Gs vertices never executed.
	Remaining int
	// PausedAtEnd counts cycle threads still held back when the run
	// stopped.
	PausedAtEnd int
	// Faults reports the scheduling perturbations injected into the run.
	Faults sim.FaultStats
}

// AttemptCtx performs one steered re-execution with cooperative
// cancellation and optional fault injection, and classifies the result.
// The context is checked at every scheduling point, so a cancellation
// (wolfd's per-job timeout, a client disconnect) aborts a single long
// attempt promptly instead of only between attempts.
func AttemptCtx(ctx context.Context, f Factory, g *sdg.Graph, cycle *detect.Cycle, seed int64, maxSteps int, faults sim.FaultConfig) AttemptResult {
	return attempt(ctx, f, g, cycle, seed, maxSteps, Observer{}, faults)
}

// cancelStrategy halts the run (Pick returns nil) once ctx is done,
// delegating to inner otherwise. Sim scheduling points are dominated by
// channel handoffs, so the per-pick Err check is noise.
type cancelStrategy struct {
	ctx   context.Context
	inner sim.Strategy
}

// Pick implements sim.Strategy.
func (c *cancelStrategy) Pick(w *sim.World, enabled []*sim.Thread) *sim.Thread {
	if c.ctx.Err() != nil {
		return nil
	}
	return c.inner.Pick(w, enabled)
}

// Observer wires observability into one replay attempt.
type Observer struct {
	// Timeline, when non-nil, receives the replayer's steering decisions
	// (pause slices and force-release markers) on the thread tracks of
	// Pid, timestamped with the sim step counter.
	Timeline *obs.Timeline
	// Pid is the trace-event process the markers belong to (the caller
	// puts the executed-operation tracks of the same run under the same
	// pid).
	Pid int64
	// Listeners are appended to the run's listener list, after the
	// steering strategy — a timeline listener here sees events with the
	// same step clock the markers use.
	Listeners []sim.Listener
}

// AttemptObserved is Attempt with steering markers and extra listeners;
// see Observer. Any pause slice still open when the run stops (a thread
// held back right into the deadlock) is closed at the final step so the
// exported timeline stays balanced.
func AttemptObserved(f Factory, g *sdg.Graph, cycle *detect.Cycle, seed int64, maxSteps int, o Observer) *sim.Outcome {
	return attempt(context.Background(), f, g, cycle, seed, maxSteps, o, sim.FaultConfig{}).Outcome
}

// attempt is the shared body of Attempt, AttemptObserved and AttemptCtx:
// one steered re-execution under ctx, with optional fault injection and
// observability, classified.
func attempt(ctx context.Context, f Factory, g *sdg.Graph, cycle *detect.Cycle, seed int64, maxSteps int, o Observer, faults sim.FaultConfig) AttemptResult {
	prog, opts := f()
	st := &strategy{
		g:       g.Clone(),
		inCycle: make(map[string]bool, len(cycle.Tuples)),
		rng:     rand.New(rand.NewSource(seed)),
		occ:     make(map[string]map[string]int),
		tl:      o.Timeline,
		tlPid:   o.Pid,
		paused:  make(map[string]bool),
		tids:    make(map[string]int64),
	}
	for _, tp := range cycle.Tuples {
		st.inCycle[tp.Thread] = true
	}
	opts.Listeners = append(opts.Listeners, st)
	opts.Listeners = append(opts.Listeners, o.Listeners...)
	if maxSteps > 0 {
		opts.MaxSteps = maxSteps
	}
	// Strategy stack, outermost first: cancellation check, then Gs
	// steering. The fault injector plugs in *below* steering as the final
	// chooser among allowed threads: perturbations (stalls, delayed
	// grants, preemptions) reorder what steering permits and spurious
	// wakeups mutate wait sets, but a paused thread stays paused — the
	// same contract a real replayer enforces by keeping steered threads
	// blocked in instrumentation.
	var inj *sim.Injector
	if faults.Enabled() {
		inj = sim.NewInjector(sim.NewRandomStrategy(seed), faults)
		st.inner = inj
	}
	var top sim.Strategy = st
	if ctx.Done() != nil {
		top = &cancelStrategy{ctx: ctx, inner: top}
	}
	out := sim.Run(prog, top, opts)
	if st.tl != nil {
		// Deterministic close order so exports are golden-testable.
		var open []string
		for name, isPaused := range st.paused {
			if isPaused {
				open = append(open, name)
			}
		}
		sort.Strings(open)
		for _, name := range open {
			st.tl.End(st.tlPid, st.tids[name], int64(out.Steps))
		}
	}
	res := AttemptResult{
		Outcome:     out,
		Hit:         Hit(out, cycle),
		Forced:      st.forced,
		Remaining:   st.g.Size(),
		PausedAtEnd: st.pausedCount(),
	}
	if inj != nil {
		res.Faults = inj.Stats()
	}
	res.Reason = classify(out, res.Hit, res.Forced, res.Remaining, res.PausedAtEnd)
	return res
}

// Hit reports whether out reproduced the cycle: the run deadlocked and
// for every deadlocking acquisition of the cycle a distinct thread is
// blocked acquiring the same lock from the same source location (the
// paper's hit criterion — deadlocking "at the exact location"; a
// deadlock at other sites is not a hit).
func Hit(out *sim.Outcome, cycle *detect.Cycle) bool {
	if !out.Deadlocked() {
		return false
	}
	type need struct{ site, lock string }
	avail := make(map[need]int)
	for _, b := range out.Blocked {
		if b.Op.Kind == sim.OpLock {
			avail[need{b.Op.Site, b.Op.Lock.Name()}]++
		}
	}
	for _, tp := range cycle.Tuples {
		k := need{tp.Site, tp.Lock}
		if avail[k] == 0 {
			return false
		}
		avail[k]--
	}
	return true
}

// Reproduce runs up to cfg.Attempts steered executions, stopping at the
// first hit.
func Reproduce(f Factory, g *sdg.Graph, cycle *detect.Cycle, cfg Config) Result {
	return ReproduceCtx(context.Background(), f, g, cycle, cfg)
}

// FallbackAttempt performs one PCT-randomized confirmation run — the
// DeadlockFuzzer-like pass the hardened replayer degrades to when
// precise Gs steering keeps diverging. Depth follows the cycle size (a
// k-thread deadlock needs k-1 well-placed priority changes);
// expectedSteps should approximate the program's run length so PCT's
// priority-change points actually land inside the run (ReproduceCtx
// feeds back the observed step count of earlier attempts; 1024 when
// zero).
func FallbackAttempt(ctx context.Context, f Factory, cycle *detect.Cycle, seed int64, maxSteps, expectedSteps int, faults sim.FaultConfig) (*sim.Outcome, bool) {
	prog, opts := f()
	if maxSteps > 0 {
		opts.MaxSteps = maxSteps
	}
	depth := len(cycle.Tuples)
	if expectedSteps <= 0 {
		expectedSteps = 1024
	}
	var top sim.Strategy = sim.NewPCTStrategy(seed, depth, expectedSteps)
	if faults.Enabled() {
		top = sim.NewInjector(top, faults)
	}
	if ctx.Done() != nil {
		top = &cancelStrategy{ctx: ctx, inner: top}
	}
	out := sim.Run(prog, top, opts)
	return out, Hit(out, cycle)
}

// ReproduceCtx is Reproduce hardened with divergence-aware retry: every
// failed steered attempt is classified (see DivergenceReason), the step
// budget escalates (doubling, capped) when the budget itself was the
// problem, seeds rotate between attempts, and once every
// steered attempt has diverged the replayer degrades to a
// PCT-randomized confirmation pass so the Result distinguishes
// confirmed-by-steering, confirmed-by-fallback and unreproduced — the
// latter always carrying a non-empty divergence histogram. When ctx
// carries an obs.Recorder, every re-execution emits a "replay.attempt"
// span recording its step count, whether it hit, and the divergence
// reason of a miss. Cancellation is honored at every scheduling point,
// not just between attempts.
func ReproduceCtx(ctx context.Context, f Factory, g *sdg.Graph, cycle *detect.Cycle, cfg Config) Result {
	attempts := cfg.Attempts
	if attempts <= 0 {
		attempts = DefaultAttempts
	}
	res := Result{Divergence: make(Divergence)}
	maxSteps := cfg.MaxSteps
	escalations := 0
	for i := 0; i < attempts; i++ {
		_, sp := obs.Start(ctx, "replay.attempt")
		ar := AttemptCtx(ctx, f, g, cycle, cfg.BaseSeed+int64(i), maxSteps, cfg.Faults)
		res.Attempts++
		res.LastOutcome = ar.Outcome
		res.Faults = addFaultStats(res.Faults, ar.Faults)
		if sp != nil {
			sp.Add("steps", int64(ar.Outcome.Steps))
			if ar.Hit {
				sp.Add("hit", 1)
			} else {
				sp.Add("divergence."+ar.Reason.String(), 1)
			}
			sp.End()
		}
		if ar.Hit {
			res.Reproduced = true
			res.Hits++
			res.Method = MethodSteering
			return res
		}
		res.Divergence.Add(ar.Reason)
		if ar.Reason == DivergenceCancelled || ctx.Err() != nil {
			return res
		}
		// Budget escalation: when the run ran out of steps (whether plainly
		// too long or starved into the limit), retrying at the same budget
		// with a fresh seed rarely helps — double it, capped.
		if ar.Outcome.Kind == sim.StepLimit && escalations < maxStepEscalation {
			if maxSteps <= 0 {
				maxSteps = sim.DefaultMaxSteps
			}
			maxSteps *= 2
			escalations++
		}
	}

	// Degraded mode: precise steering keeps diverging, so mirror the
	// paper's DeadlockFuzzer baseline — randomized PCT runs checked
	// against the same hit criterion. The observed length of earlier runs
	// calibrates where PCT places its priority-change points.
	expected := 0
	if res.LastOutcome != nil {
		expected = res.LastOutcome.Steps
	}
	for i := 0; i < cfg.fallbackAttempts(); i++ {
		if ctx.Err() != nil {
			return res
		}
		_, sp := obs.Start(ctx, "replay.fallback")
		out, hit := FallbackAttempt(ctx, f, cycle,
			cfg.BaseSeed+int64(attempts+i), maxSteps, expected, cfg.Faults)
		res.FallbackAttempts++
		res.LastOutcome = out
		if out.Steps > expected {
			expected = out.Steps
		}
		if sp != nil {
			sp.Add("steps", int64(out.Steps))
			if hit {
				sp.Add("hit", 1)
			}
			sp.End()
		}
		if hit {
			res.Reproduced = true
			res.Hits++
			res.Method = MethodFallback
			return res
		}
	}
	return res
}

// addFaultStats sums two fault-stat records.
func addFaultStats(a, b sim.FaultStats) sim.FaultStats {
	a.Preemptions += b.Preemptions
	a.Stalls += b.Stalls
	a.Wakeups += b.Wakeups
	a.DelayedGrants += b.DelayedGrants
	return a
}

// HitRate runs exactly runs attempts without early exit and returns the
// fraction that reproduced the cycle — the paper's Figure 8 statistic
// (hit rate over 100 runs per potential deadlock).
func HitRate(f Factory, g *sdg.Graph, cycle *detect.Cycle, runs int, cfg Config) float64 {
	if runs <= 0 {
		return 0
	}
	hits := 0
	for i := 0; i < runs; i++ {
		out := Attempt(f, g, cycle, cfg.BaseSeed+int64(i), cfg.MaxSteps)
		if Hit(out, cycle) {
			hits++
		}
	}
	return float64(hits) / float64(runs)
}
