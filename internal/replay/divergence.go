package replay

// This file implements divergence-aware retry: every failed replay
// attempt is classified with a typed DivergenceReason explaining *why*
// the steered re-execution missed the recorded deadlock, so the retry
// loop can escalate step budgets when the budget was the problem and
// rotate seeds otherwise, and the Report can carry a reason histogram
// for every unreproduced cycle instead of a bare miss.

import (
	"fmt"
	"sort"
	"strings"

	"wolf/sim"
)

// DivergenceReason classifies one failed replay attempt.
type DivergenceReason int

const (
	// DivergenceNone: the attempt hit (no divergence).
	DivergenceNone DivergenceReason = iota
	// DivergenceStarved: the steered schedule starved — cycle threads
	// were still paused on unsatisfied Gs dependencies when the run
	// ended, or paused threads had to be force-released to keep the run
	// alive (Algorithm 4 lines 5-7 fired).
	DivergenceStarved
	// DivergenceMaxSteps: the step budget was exhausted with no thread
	// held back by steering — the run was simply too long for the budget.
	DivergenceMaxSteps
	// DivergenceWrongDeadlock: the run deadlocked, but not at the
	// recorded sites — a different (possibly also real) deadlock.
	DivergenceWrongDeadlock
	// DivergenceMismatch: the run terminated while Gs still held
	// unexecuted vertices — control flow diverged from the recorded
	// trace, so the recorded acquisitions never happened.
	DivergenceMismatch
	// DivergenceNoDeadlock: the run terminated cleanly with the recorded
	// schedule fully satisfied; the deadlock window closed anyway.
	DivergenceNoDeadlock
	// DivergenceCancelled: the attempt was abandoned mid-run because the
	// caller's context was cancelled.
	DivergenceCancelled
	// DivergenceError: the re-execution aborted with a program error.
	DivergenceError

	numDivergenceReasons
)

// divergenceNames renders reasons; order matches the constants.
var divergenceNames = [...]string{
	DivergenceNone:          "none",
	DivergenceStarved:       "starved",
	DivergenceMaxSteps:      "max-steps",
	DivergenceWrongDeadlock: "wrong-deadlock",
	DivergenceMismatch:      "schedule-mismatch",
	DivergenceNoDeadlock:    "no-deadlock",
	DivergenceCancelled:     "cancelled",
	DivergenceError:         "program-error",
}

// String names the reason.
func (r DivergenceReason) String() string {
	if r < 0 || int(r) >= len(divergenceNames) {
		return fmt.Sprintf("DivergenceReason(%d)", int(r))
	}
	return divergenceNames[r]
}

// Divergence is a histogram of failed attempts by reason — the
// explanation a Report carries for every unreproduced cycle instead of a
// bare miss.
type Divergence map[DivergenceReason]int

// Add counts one failed attempt. DivergenceNone is ignored.
func (d Divergence) Add(r DivergenceReason) {
	if r != DivergenceNone {
		d[r]++
	}
}

// Total is the number of classified failures.
func (d Divergence) Total() int {
	n := 0
	for _, c := range d {
		n += c
	}
	return n
}

// Merge folds other into d.
func (d Divergence) Merge(other Divergence) {
	for r, c := range other {
		d[r] += c
	}
}

// String renders the histogram deterministically, e.g.
// "max-steps:2 wrong-deadlock:1".
func (d Divergence) String() string {
	if len(d) == 0 {
		return ""
	}
	type entry struct {
		r DivergenceReason
		c int
	}
	var es []entry
	for r, c := range d {
		es = append(es, entry{r, c})
	}
	sort.Slice(es, func(i, j int) bool { return es[i].r < es[j].r })
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = fmt.Sprintf("%v:%d", e.r, e.c)
	}
	return strings.Join(parts, " ")
}

// ByName returns the histogram keyed by reason name, for wire formats.
func (d Divergence) ByName() map[string]int {
	if len(d) == 0 {
		return nil
	}
	out := make(map[string]int, len(d))
	for r, c := range d {
		out[r.String()] = c
	}
	return out
}

// classify derives the divergence reason of one finished attempt from
// its outcome and the steering strategy's bookkeeping: forced counts
// force-releases, remaining is the number of Gs vertices never executed,
// and pausedAtEnd counts cycle threads still held back when the run
// stopped.
func classify(out *sim.Outcome, hit bool, forced, remaining, pausedAtEnd int) DivergenceReason {
	if hit {
		return DivergenceNone
	}
	switch out.Kind {
	case sim.Halted:
		return DivergenceCancelled
	case sim.ProgramError:
		return DivergenceError
	case sim.Deadlocked:
		return DivergenceWrongDeadlock
	case sim.StepLimit:
		if pausedAtEnd > 0 {
			return DivergenceStarved
		}
		return DivergenceMaxSteps
	default: // Terminated
		if remaining > 0 {
			return DivergenceMismatch
		}
		if forced > 0 {
			return DivergenceStarved
		}
		return DivergenceNoDeadlock
	}
}

// Method says which pass of the hardened Replayer confirmed a cycle.
type Method string

const (
	// MethodSteering: precise Gs-steered replay (Algorithm 4) hit.
	MethodSteering Method = "steering"
	// MethodFallback: the PCT-randomized confirmation pass hit after
	// every steered attempt diverged (the DeadlockFuzzer-like fallback).
	MethodFallback Method = "fallback"
	// MethodNone: the cycle was not reproduced.
	MethodNone Method = ""
)
