package replay

import (
	"context"
	"strings"
	"testing"

	"wolf/internal/sdg"
	"wolf/sim"
)

// TestDivergenceClassify pins the reason taxonomy on synthetic inputs.
func TestDivergenceClassify(t *testing.T) {
	cases := []struct {
		kind                           sim.OutcomeKind
		hit                            bool
		forced, remaining, pausedAtEnd int
		want                           DivergenceReason
	}{
		{sim.Deadlocked, true, 0, 0, 0, DivergenceNone},
		{sim.Halted, false, 0, 0, 0, DivergenceCancelled},
		{sim.ProgramError, false, 0, 3, 0, DivergenceError},
		{sim.Deadlocked, false, 0, 0, 0, DivergenceWrongDeadlock},
		{sim.StepLimit, false, 0, 2, 1, DivergenceStarved},
		{sim.StepLimit, false, 0, 0, 0, DivergenceMaxSteps},
		{sim.Terminated, false, 0, 2, 0, DivergenceMismatch},
		{sim.Terminated, false, 1, 0, 0, DivergenceStarved},
		{sim.Terminated, false, 0, 0, 0, DivergenceNoDeadlock},
	}
	for i, c := range cases {
		got := classify(&sim.Outcome{Kind: c.kind}, c.hit, c.forced, c.remaining, c.pausedAtEnd)
		if got != c.want {
			t.Errorf("case %d: classify = %v, want %v", i, got, c.want)
		}
	}
}

// TestDivergenceHistogramString pins the deterministic rendering.
func TestDivergenceHistogramString(t *testing.T) {
	d := make(Divergence)
	d.Add(DivergenceWrongDeadlock)
	d.Add(DivergenceMaxSteps)
	d.Add(DivergenceMaxSteps)
	d.Add(DivergenceNone) // ignored
	if got := d.String(); got != "max-steps:2 wrong-deadlock:1" {
		t.Fatalf("String = %q", got)
	}
	if d.Total() != 3 {
		t.Fatalf("Total = %d", d.Total())
	}
	byName := d.ByName()
	if byName["max-steps"] != 2 || byName["wrong-deadlock"] != 1 {
		t.Fatalf("ByName = %v", byName)
	}
	var empty Divergence
	if empty.String() != "" || empty.ByName() != nil {
		t.Fatal("empty histogram should render empty")
	}
}

// TestUnreproducedCarriesHistogram: a cycle that cannot be reproduced
// (its threads never appear in the replayed binary) yields an
// unreproduced Result with MethodNone, a non-empty divergence histogram
// classifying every steered miss, and a spent fallback budget.
func TestUnreproducedCarriesHistogram(t *testing.T) {
	tr, cycles := analyze(t, fig4Factory)
	c := cycleBySig(t, cycles, "19+33")
	g := sdg.Build(c, tr)
	_ = tr

	renamed := func() (sim.Program, sim.Options) {
		var l1 *sim.Lock
		opts := sim.Options{Setup: func(w *sim.World) {
			l1 = w.NewLock("l1")
			w.NewLock("l2")
			w.NewLock("l3")
		}}
		prog := func(th *sim.Thread) {
			h := th.Go("other", func(u *sim.Thread) {
				u.Lock(l1, "x1")
				u.Unlock(l1, "x2")
			}, "s")
			th.Join(h, "j")
		}
		return prog, opts
	}
	res := Reproduce(renamed, g, c, Config{Attempts: 3})
	if res.Reproduced || res.Method != MethodNone {
		t.Fatalf("res = %+v, want unreproduced", res)
	}
	if res.Divergence.Total() != 3 {
		t.Fatalf("divergence = %v, want 3 classified misses", res.Divergence)
	}
	if res.Divergence[DivergenceMismatch] == 0 {
		t.Fatalf("divergence = %v, want schedule-mismatch entries", res.Divergence)
	}
	if res.FallbackAttempts != DefaultFallbackAttempts {
		t.Fatalf("fallback attempts = %d, want %d", res.FallbackAttempts, DefaultFallbackAttempts)
	}
}

// TestProgramErrorDivergence: a crashing workload classifies as
// program-error, not as any scheduling divergence.
func TestProgramErrorDivergence(t *testing.T) {
	tr, cycles := analyze(t, fig4Factory)
	c := cycleBySig(t, cycles, "19+33")
	g := sdg.Build(c, tr)
	_ = tr

	crashing := func() (sim.Program, sim.Options) {
		_, opts := fig4Factory()
		return func(th *sim.Thread) {
			th.Yield("pre")
			panic("injected workload bug")
		}, opts
	}
	res := Reproduce(crashing, g, c, Config{Attempts: 2, FallbackAttempts: -1})
	if res.Reproduced {
		t.Fatal("crash reported as reproduced")
	}
	if res.Divergence[DivergenceError] != 2 {
		t.Fatalf("divergence = %v, want program-error:2", res.Divergence)
	}
	if res.FallbackAttempts != 0 {
		t.Fatalf("fallback ran despite FallbackAttempts=-1: %d", res.FallbackAttempts)
	}
}

// TestStepBudgetEscalation: a step budget far too small for the steered
// schedule is escalated across retries until the deadlock is confirmed —
// a fixed budget would miss on every attempt.
func TestStepBudgetEscalation(t *testing.T) {
	tr, cycles := analyze(t, fig4Factory)
	c := cycleBySig(t, cycles, "19+33")
	g := sdg.Build(c, tr)
	res := Reproduce(fig4Factory, g, c, Config{Attempts: 5, MaxSteps: 4})
	if !res.Reproduced || res.Method != MethodSteering {
		t.Fatalf("res = %+v, want confirmed-by-steering after escalation", res)
	}
	if res.Attempts < 2 {
		t.Fatalf("attempts = %d, want > 1 (first budget must be too small)", res.Attempts)
	}
	if res.Divergence[DivergenceMaxSteps]+res.Divergence[DivergenceStarved] == 0 {
		t.Fatalf("divergence = %v, want budget-type misses recorded", res.Divergence)
	}
}

// TestFallbackConfirms: when the steering graph drives the run into a
// different deadlock than the one under confirmation, the steered pass
// diverges (wrong-deadlock) and the PCT fallback — the DeadlockFuzzer
// baseline — still confirms the cycle.
func TestFallbackConfirms(t *testing.T) {
	tr, cycles := analyze(t, figure2Factory)
	theta1 := cycleBySig(t, cycles, "509+509")
	theta2 := cycleBySig(t, cycles, "509+522")
	// Steer toward θ2 while confirming θ1: every steered attempt lands in
	// the wrong deadlock, then randomized PCT (which is biased toward θ1,
	// the paper's Section 2 observation) confirms it.
	g2 := sdg.Build(theta2, tr)
	res := Reproduce(figure2Factory, g2, theta1, Config{Attempts: 3, FallbackAttempts: 30})
	if !res.Reproduced || res.Method != MethodFallback {
		t.Fatalf("res = %+v (divergence %v), want confirmed-by-fallback", res, res.Divergence)
	}
	if res.Divergence[DivergenceWrongDeadlock] == 0 {
		t.Fatalf("divergence = %v, want wrong-deadlock entries", res.Divergence)
	}
	if res.Attempts != 3 {
		t.Fatalf("steered attempts = %d, want 3 (all diverged)", res.Attempts)
	}
}

// TestAttemptCtxCancellation: cancelling the context mid-run halts a
// single attempt promptly and classifies it as cancelled — the wolfd
// per-job timeout path.
func TestAttemptCtxCancellation(t *testing.T) {
	tr, cycles := analyze(t, fig4Factory)
	c := cycleBySig(t, cycles, "19+33")
	g := sdg.Build(c, tr)
	_ = tr

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ar := AttemptCtx(ctx, fig4Factory, g, c, 1, 0, sim.FaultConfig{})
	if ar.Outcome.Kind != sim.Halted || ar.Reason != DivergenceCancelled {
		t.Fatalf("cancelled attempt = %v / %v, want halted/cancelled", ar.Outcome.Kind, ar.Reason)
	}

	res := ReproduceCtx(ctx, fig4Factory, g, c, Config{Attempts: 10})
	if res.Reproduced || res.Attempts != 1 {
		t.Fatalf("res = %+v, want a single cancelled attempt and no retries", res)
	}
	if res.Divergence[DivergenceCancelled] != 1 {
		t.Fatalf("divergence = %v, want cancelled:1", res.Divergence)
	}
	if res.FallbackAttempts != 0 {
		t.Fatal("fallback ran under a cancelled context")
	}
}

// TestAttemptCtxCancelMidRun: cancellation raised while the run is in
// flight (from a listener, mimicking an external deadline) halts it at
// the next scheduling point rather than at the attempt boundary.
func TestAttemptCtxCancelMidRun(t *testing.T) {
	tr, cycles := analyze(t, fig4Factory)
	c := cycleBySig(t, cycles, "19+33")
	g := sdg.Build(c, tr)
	_ = tr

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	cancelling := func() (sim.Program, sim.Options) {
		prog, opts := fig4Factory()
		opts.Listeners = append(opts.Listeners, sim.ListenerFunc(func(sim.Event) {
			n++
			if n == 5 {
				cancel()
			}
		}))
		return prog, opts
	}
	ar := AttemptCtx(ctx, cancelling, g, c, 1, 0, sim.FaultConfig{})
	if ar.Outcome.Kind != sim.Halted || ar.Reason != DivergenceCancelled {
		t.Fatalf("mid-run cancel = %v / %v, want halted/cancelled", ar.Outcome.Kind, ar.Reason)
	}
	if ar.Outcome.Steps > 20 {
		t.Fatalf("run continued %d steps past cancellation", ar.Outcome.Steps)
	}
}

// TestReproduceUnderFaultInjection: the Fig. 4 deadlock is still
// confirmed end-to-end with scheduling perturbations injected at
// multiple rates and seeds, and the Result reports the injected faults.
func TestReproduceUnderFaultInjection(t *testing.T) {
	tr, cycles := analyze(t, fig4Factory)
	c := cycleBySig(t, cycles, "19+33")
	g := sdg.Build(c, tr)
	_ = tr

	sawFault := false
	for _, rate := range []float64{0.05, 0.25} {
		for seed := int64(1); seed <= 3; seed++ {
			res := Reproduce(fig4Factory, g, c, Config{
				Attempts: 10,
				Faults:   sim.FaultConfig{Seed: seed, Rate: rate},
			})
			if !res.Reproduced {
				t.Fatalf("rate=%g seed=%d: not reproduced (divergence %v)", rate, seed, res.Divergence)
			}
			if res.Faults.Total() > 0 {
				sawFault = true
			}
		}
	}
	if !sawFault {
		t.Fatal("no run reported any injected fault; injection is inert")
	}
}

// TestResultStringParts sanity-checks the Method constants used in
// reports.
func TestResultStringParts(t *testing.T) {
	if MethodSteering == MethodFallback || string(MethodSteering) != "steering" {
		t.Fatalf("method constants wrong: %q %q", MethodSteering, MethodFallback)
	}
	if !strings.Contains((Divergence{DivergenceStarved: 1}).String(), "starved") {
		t.Fatal("histogram rendering lost the reason name")
	}
}
