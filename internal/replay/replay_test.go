package replay

import (
	"testing"

	"wolf/internal/detect"
	"wolf/internal/sdg"
	"wolf/internal/trace"
	"wolf/internal/vclock"
	"wolf/sim"
)

// fig4Factory rebuilds the paper's Figure 4 program on every call.
func fig4Factory() (sim.Program, sim.Options) {
	var l1, l2, l3 *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		l1, l2, l3 = w.NewLock("l1"), w.NewLock("l2"), w.NewLock("l3")
	}}
	t3body := func(u *sim.Thread) {
		u.Lock(l3, "31")
		u.Lock(l2, "32")
		u.Lock(l1, "33")
		u.Unlock(l1, "34")
		u.Unlock(l2, "35")
		u.Unlock(l3, "36")
	}
	prog := func(th *sim.Thread) {
		th.Lock(l1, "11")
		th.Lock(l2, "12")
		th.Unlock(l2, "13")
		th.Unlock(l1, "14")
		th.Go("t2", func(u *sim.Thread) { u.Go("t3", t3body, "21") }, "15")
		th.Lock(l3, "16")
		th.Unlock(l3, "17")
		th.Lock(l1, "18")
		th.Lock(l2, "19")
		th.Unlock(l2, "20")
		th.Unlock(l1, "21")
	}
	return prog, opts
}

// analyze records a sequential run of f and returns the trace and cycles.
func analyze(t *testing.T, f Factory) (*trace.Trace, []*detect.Cycle) {
	t.Helper()
	prog, opts := f()
	vt := vclock.NewTracker()
	rec := trace.NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	out := sim.Run(prog, sim.FirstEnabled{}, opts)
	if out.Kind == sim.ProgramError {
		t.Fatalf("outcome = %v", out)
	}
	tr := rec.Finish(0)
	return tr, detect.Cycles(tr, detect.Config{})
}

// cycleBySig finds the cycle with the given signature.
func cycleBySig(t *testing.T, cycles []*detect.Cycle, sig string) *detect.Cycle {
	t.Helper()
	for _, c := range cycles {
		if c.Signature() == sig {
			return c
		}
	}
	t.Fatalf("cycle %s not found in %v", sig, cycles)
	return nil
}

// TestReplayFigure4Theta2: the Gs-driven replay reproduces θ2 on every
// seed — the paper's Section 3.5 walkthrough.
func TestReplayFigure4Theta2(t *testing.T) {
	tr, cycles := analyze(t, fig4Factory)
	c := cycleBySig(t, cycles, "19+33")
	g := sdg.Build(c, tr)
	for seed := int64(0); seed < 20; seed++ {
		out := Attempt(fig4Factory, g, c, seed, 0)
		if !Hit(out, c) {
			t.Fatalf("seed %d: replay missed θ2: %v", seed, out)
		}
	}
}

// TestHitRateFigure4: hit rate of θ2 is 1.0 — the dependency graph pins
// the schedule completely for this program.
func TestHitRateFigure4(t *testing.T) {
	tr, cycles := analyze(t, fig4Factory)
	c := cycleBySig(t, cycles, "19+33")
	g := sdg.Build(c, tr)
	if hr := HitRate(fig4Factory, g, c, 50, Config{}); hr != 1.0 {
		t.Fatalf("hit rate = %v, want 1.0", hr)
	}
}

// figure2Factory rebuilds the Figure 2 synchronized-maps scenario.
func figure2Factory() (sim.Program, sim.Options) {
	var m1, m2 *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		m1, m2 = w.NewLock("SM1.mutex"), w.NewLock("SM2.mutex")
	}}
	equals := func(mine, other *sim.Lock) sim.Program {
		return func(u *sim.Thread) {
			u.Lock(mine, "2024")
			u.Lock(other, "509")
			u.Unlock(other, "509u")
			u.Lock(other, "522")
			u.Unlock(other, "522u")
			u.Unlock(mine, "2025")
		}
	}
	prog := func(th *sim.Thread) {
		h1 := th.Go("t1", equals(m1, m2), "s1")
		h2 := th.Go("t2", equals(m2, m1), "s2")
		th.Join(h1, "j1")
		th.Join(h2, "j2")
	}
	return prog, opts
}

// TestReplayFigure2Theta2: θ2 (one thread at 509, the other at 522) is
// the deadlock the paper's Section 2 shows randomized replay biases
// against; the Gs-driven replay reproduces it reliably.
func TestReplayFigure2Theta2(t *testing.T) {
	tr, cycles := analyze(t, figure2Factory)
	c := cycleBySig(t, cycles, "509+522")
	g := sdg.Build(c, tr)
	hits := 0
	for seed := int64(0); seed < 30; seed++ {
		if Hit(Attempt(figure2Factory, g, c, seed, 0), c) {
			hits++
		}
	}
	if hits < 25 {
		t.Fatalf("θ2 hit %d/30 times, want >= 25 (Gs-driven replay)", hits)
	}
}

// TestReplayFigure2Theta1: the symmetric 509+509 deadlock reproduces too.
func TestReplayFigure2Theta1(t *testing.T) {
	tr, cycles := analyze(t, figure2Factory)
	c := cycleBySig(t, cycles, "509+509")
	g := sdg.Build(c, tr)
	hits := 0
	for seed := int64(0); seed < 30; seed++ {
		if Hit(Attempt(figure2Factory, g, c, seed, 0), c) {
			hits++
		}
	}
	if hits < 25 {
		t.Fatalf("θ1 hit %d/30 times, want >= 25", hits)
	}
}

// TestRandomReplayBiasedAgainstTheta2: plain random scheduling (the
// DeadlockFuzzer-style baseline without dependency constraints) almost
// never produces θ2 — it deadlocks at θ1/θ3 instead. This is the paper's
// motivation for trace-driven replay.
func TestRandomReplayBiasedAgainstTheta2(t *testing.T) {
	tr, cycles := analyze(t, figure2Factory)
	c := cycleBySig(t, cycles, "509+522")
	_ = tr
	hits := 0
	for seed := int64(0); seed < 50; seed++ {
		prog, opts := figure2Factory()
		out := sim.Run(prog, sim.NewRandomStrategy(seed), opts)
		if Hit(out, c) {
			hits++
		}
	}
	if hits > 5 {
		t.Fatalf("random schedule hit θ2 %d/50 times; expected heavy bias toward θ1", hits)
	}
}

// TestInfeasibleCycleDoesNotHang: replaying θ4 (cyclic Gs — normally
// filtered by the Generator) must terminate via force-release rather
// than hang.
func TestInfeasibleCycleDoesNotHang(t *testing.T) {
	tr, cycles := analyze(t, figure2Factory)
	c := cycleBySig(t, cycles, "522+522")
	g := sdg.Build(c, tr)
	if !g.Cyclic() {
		t.Fatal("θ4 Gs should be cyclic")
	}
	for seed := int64(0); seed < 10; seed++ {
		out := Attempt(figure2Factory, g, c, seed, 20000)
		if out.Kind == sim.StepLimit {
			t.Fatalf("seed %d: replay of infeasible cycle hit step limit", seed)
		}
		if Hit(out, c) {
			t.Fatalf("seed %d: impossible deadlock θ4 reproduced", seed)
		}
	}
}

// divergentFactory builds a program whose worker takes a different path
// on replay (it skips the 16-analogue acquisition when a shared flag is
// set), exercising the Replayer's vertex-skipping.
func divergentFactory(skip bool) Factory {
	return func() (sim.Program, sim.Options) {
		var l1, l2, l3 *sim.Lock
		opts := sim.Options{Setup: func(w *sim.World) {
			l1, l2, l3 = w.NewLock("l1"), w.NewLock("l2"), w.NewLock("l3")
		}}
		prog := func(th *sim.Thread) {
			h := th.Go("w", func(u *sim.Thread) {
				u.Lock(l3, "31")
				u.Lock(l2, "32")
				u.Lock(l1, "33")
				u.Unlock(l1, "34")
				u.Unlock(l2, "35")
				u.Unlock(l3, "36")
			}, "15")
			if !skip {
				th.Lock(l3, "16")
				th.Unlock(l3, "17")
			}
			th.Lock(l1, "18")
			th.Lock(l2, "19")
			th.Unlock(l2, "20")
			th.Unlock(l1, "21")
			th.Join(h, "22")
		}
		return prog, opts
	}
}

// TestDivergentControlFlow: Gs built from a trace containing the l3
// acquisition at site 16 still replays when the re-execution skips 16 —
// the skipped vertex's edges are removed (paper Section 3.5, last
// paragraph).
func TestDivergentControlFlow(t *testing.T) {
	tr, cycles := analyze(t, divergentFactory(false))
	c := cycleBySig(t, cycles, "19+33")
	g := sdg.Build(c, tr)
	// Replay a *different* binary: one that skips site 16.
	hits := 0
	for seed := int64(0); seed < 20; seed++ {
		out := Attempt(divergentFactory(true), g, c, seed, 20000)
		if out.Kind == sim.StepLimit {
			t.Fatalf("seed %d: replay hung on skipped vertex", seed)
		}
		if Hit(out, c) {
			hits++
		}
	}
	if hits < 15 {
		t.Fatalf("divergent replay hit %d/20, want >= 15", hits)
	}
}

// TestReproduceStopsEarly: Reproduce stops at the first hit.
func TestReproduceStopsEarly(t *testing.T) {
	tr, cycles := analyze(t, fig4Factory)
	c := cycleBySig(t, cycles, "19+33")
	g := sdg.Build(c, tr)
	res := Reproduce(fig4Factory, g, c, Config{Attempts: 10})
	if !res.Reproduced {
		t.Fatal("not reproduced")
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (deterministic hit)", res.Attempts)
	}
}

// TestHitCriterion: a deadlock at different sites is not a hit.
func TestHitCriterion(t *testing.T) {
	tr, cycles := analyze(t, figure2Factory)
	c509 := cycleBySig(t, cycles, "509+509")
	c522 := cycleBySig(t, cycles, "522+522")
	g := sdg.Build(c509, tr)
	out := Attempt(figure2Factory, g, c509, 1, 0)
	if !Hit(out, c509) {
		t.Fatal("θ1 replay missed")
	}
	if Hit(out, c522) {
		t.Fatal("θ1 deadlock wrongly counted as a θ4 hit")
	}
	if Hit(&sim.Outcome{Kind: sim.Terminated}, c509) {
		t.Fatal("terminated run counted as hit")
	}
}

// TestAttemptDoesNotMutateCallerGraph: Attempt clones Gs.
func TestAttemptDoesNotMutateCallerGraph(t *testing.T) {
	tr, cycles := analyze(t, fig4Factory)
	c := cycleBySig(t, cycles, "19+33")
	g := sdg.Build(c, tr)
	n := g.Size()
	Attempt(fig4Factory, g, c, 1, 0)
	if g.Size() != n {
		t.Fatalf("caller graph mutated: %d → %d vertices", n, g.Size())
	}
}

// TestReplayFailureInjection: a program that panics during replay (a
// buggy workload, not a scheduling problem) must surface as a
// program-error outcome and an unreproduced result — never a hang or a
// bogus confirmation.
func TestReplayFailureInjection(t *testing.T) {
	tr, cycles := analyze(t, fig4Factory)
	c := cycleBySig(t, cycles, "19+33")
	g := sdg.Build(c, tr)

	crashing := func() (sim.Program, sim.Options) {
		prog, opts := fig4Factory()
		wrapped := func(th *sim.Thread) {
			th.Yield("pre")
			panic("injected workload bug")
		}
		_ = prog
		return wrapped, opts
	}
	out := Attempt(crashing, g, c, 1, 0)
	if out.Kind != sim.ProgramError {
		t.Fatalf("outcome = %v, want program-error", out)
	}
	res := Reproduce(crashing, g, c, Config{Attempts: 3})
	if res.Reproduced {
		t.Fatal("crashing workload reported as reproduced")
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
}

// TestReplayCycleThreadMissing: replaying against a program whose cycle
// threads never appear (renamed spawn) terminates and misses cleanly.
func TestReplayCycleThreadMissing(t *testing.T) {
	tr, cycles := analyze(t, fig4Factory)
	c := cycleBySig(t, cycles, "19+33")
	g := sdg.Build(c, tr)

	renamed := func() (sim.Program, sim.Options) {
		var l1 *sim.Lock
		opts := sim.Options{Setup: func(w *sim.World) {
			l1 = w.NewLock("l1")
			w.NewLock("l2")
			w.NewLock("l3")
		}}
		prog := func(th *sim.Thread) {
			h := th.Go("other", func(u *sim.Thread) {
				u.Lock(l1, "x1")
				u.Unlock(l1, "x2")
			}, "s")
			th.Join(h, "j")
		}
		return prog, opts
	}
	for seed := int64(0); seed < 5; seed++ {
		out := Attempt(renamed, g, c, seed, 20000)
		if out.Kind != sim.Terminated {
			t.Fatalf("seed %d: outcome = %v, want terminated", seed, out)
		}
		if Hit(out, c) {
			t.Fatal("impossible hit")
		}
	}
}
