// Package fingerprint derives a canonical cross-run identity for a
// potential deadlock cycle — the abstraction-based defect identity of
// DeadlockFuzzer (Joshi et al., PLDI 2009) applied to WOLF's detected
// cycles.
//
// The same defect manifests in many executions under different thread
// ordinals, lock instances, schedule seeds and cycle rotations. A
// fingerprint abstracts each cycle edge down to what survives across
// runs — the creation-site abstraction of the acquiring thread, the
// allocation-site abstraction of the wanted lock, the source location of
// the deadlocking acquisition, and the source locations of the
// acquisitions on the thread's lock stack (in stack order) — then sorts
// the abstracted edges and hashes them. Two cycles recorded in different
// executions of the same program point collapse to one fingerprint;
// unrelated cycles collide only if SHA-256 does.
//
// Fingerprints are strictly finer than the paper's source-location
// signatures (detect.Cycle.Signature): a signature ignores which thread
// abstraction performed each acquisition and what it already held, so
// two different interleaving patterns over the same sites share a
// signature but may carry distinct fingerprints. The corpus
// (internal/store) aggregates defect records by fingerprint.
package fingerprint

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"

	"wolf/internal/detect"
	"wolf/internal/trace"
)

// version salts the hash so a future change to the abstraction cannot
// silently collide with records written by an older scheme.
const version = "wolf-fp-v1"

// Edge is the cross-run abstraction of one cycle edge: thread t, holding
// the locks acquired at Stack, blocks acquiring Lock at Site.
type Edge struct {
	// Thread is the creation-site abstraction of the acquiring thread
	// (per-parent ordinals stripped: "main/w.3" → "main/w").
	Thread string `json:"thread"`
	// Lock is the allocation-site abstraction of the wanted lock.
	Lock string `json:"lock"`
	// Site is the source location of the deadlocking acquisition.
	Site string `json:"site"`
	// Stack holds the source locations of the acquisitions in the
	// thread's lockset, innermost last — the positions on the acquisition
	// stack that establish the hold-and-wait context.
	Stack []string `json:"stack,omitempty"`
}

// canon renders the edge as a canonical string. Unit separator bytes
// keep "a|b"+"c" and "a"+"b|c" distinct no matter what sites contain.
func (e Edge) canon() string {
	return e.Thread + "\x1f" + e.Lock + "\x1f" + e.Site + "\x1f" + strings.Join(e.Stack, "\x1e")
}

// Abstract maps one Dσ tuple to its edge abstraction.
func Abstract(tp *trace.Tuple) Edge {
	e := Edge{
		Thread: ThreadAbs(tp.Thread),
		Lock:   LockAbs(tp.Lock),
		Site:   tp.Site,
	}
	if len(tp.Held) > 0 {
		e.Stack = make([]string, len(tp.Held))
		for i, h := range tp.Held {
			e.Stack[i] = h.Site
		}
	}
	return e
}

// Edges abstracts every edge of the cycle and sorts them canonically, so
// the result is invariant under cycle rotation and thread renaming.
func Edges(c *detect.Cycle) []Edge {
	out := make([]Edge, len(c.Tuples))
	for i, tp := range c.Tuples {
		out[i] = Abstract(tp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].canon() < out[j].canon() })
	return out
}

// Of returns the cycle's fingerprint: the SHA-256 of its sorted edge
// abstractions, hex encoded. Per-run identities — thread ordinals, lock
// instances, execution indices, occurrence counters, tuple order — do
// not influence the hash.
func Of(c *detect.Cycle) string {
	h := sha256.New()
	h.Write([]byte(version))
	for _, e := range Edges(c) {
		h.Write([]byte{'\n'})
		h.Write([]byte(e.canon()))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Short abbreviates a fingerprint for logs and tables. Full fingerprints
// remain the only keys the store and the API accept.
func Short(fp string) string {
	if len(fp) <= 12 {
		return fp
	}
	return fp[:12]
}

// ThreadAbs returns the creation-site abstraction of a thread name:
// per-parent ordinals are stripped, so "main/w.0" and "main/w.1" share
// the abstraction "main/w". Threads created at the same program point
// are indistinguishable under the abstraction.
func ThreadAbs(name string) string {
	segs := strings.Split(name, "/")
	for i, s := range segs {
		segs[i] = stripOrdinal(s)
	}
	return strings.Join(segs, "/")
}

// LockAbs returns the allocation-site abstraction of a lock name.
// Convention: an explicit "#instance" suffix marks same-site instances
// ("mutex#SM1" and "mutex#SM2" share abstraction "mutex"), and locks
// allocated by threads ("base@thread.k") collapse their allocation
// ordinal and the allocating thread's ordinals.
func LockAbs(name string) string {
	if i := strings.IndexByte(name, '#'); i >= 0 {
		return name[:i]
	}
	if i := strings.LastIndexByte(name, '@'); i >= 0 {
		return name[:i] + "@" + ThreadAbs(stripOrdinal(name[i+1:]))
	}
	return name
}

// stripOrdinal removes a trailing ".<digits>" from s.
func stripOrdinal(s string) string {
	i := strings.LastIndexByte(s, '.')
	if i < 0 || i == len(s)-1 {
		return s
	}
	for _, c := range s[i+1:] {
		if c < '0' || c > '9' {
			return s
		}
	}
	return s[:i]
}
