package fingerprint

import (
	"fmt"
	"testing"

	"wolf/internal/detect"
	"wolf/internal/trace"
	"wolf/sim"
)

// tuple builds a Dσ tuple with the per-run fields (ordinals, indices,
// occurrence counters) derived from run so tests can vary everything a
// fingerprint must ignore.
func tuple(run int, thread, lock, site string, held ...[2]string) *trace.Tuple {
	tp := &trace.Tuple{
		Thread:   fmt.Sprintf("%s.%d", thread, run),
		ThreadID: sim.ThreadID(run),
		Lock:     lock,
		Site:     site,
		Idx:      sim.Index{Thread: fmt.Sprintf("%s.%d", thread, run), Seq: run * 7},
		Key:      trace.Key{Thread: fmt.Sprintf("%s.%d", thread, run), Site: site, Occ: run + 1},
		Tau:      run * 3,
		Pos:      run,
	}
	for i, h := range held {
		tp.Held = append(tp.Held, trace.HeldLock{
			Lock: h[0],
			Site: h[1],
			Idx:  sim.Index{Thread: tp.Thread, Seq: run*10 + i},
			Key:  trace.Key{Thread: tp.Thread, Site: h[1], Occ: run + i},
		})
	}
	return tp
}

// fig4Cycle is the canonical two-thread cycle shape of the paper's
// Figure 4, parameterized by run so per-run identities differ.
func fig4Cycle(run int) *detect.Cycle {
	return &detect.Cycle{Tuples: []*trace.Tuple{
		tuple(run, "main/a", "l2", "A.f:10", [2]string{"l1", "A.f:5"}),
		tuple(run, "main/b", "l1", "B.g:20", [2]string{"l2", "B.g:15"}),
	}}
}

func TestOfStableAcrossRuns(t *testing.T) {
	fp1 := Of(fig4Cycle(1))
	fp2 := Of(fig4Cycle(2))
	if fp1 != fp2 {
		t.Errorf("same defect across runs: fingerprints differ\n%s\n%s", fp1, fp2)
	}
	if len(fp1) != 64 {
		t.Errorf("fingerprint length = %d, want 64 hex chars", len(fp1))
	}
}

func TestOfRotationInvariant(t *testing.T) {
	c := fig4Cycle(1)
	rot := &detect.Cycle{Tuples: []*trace.Tuple{c.Tuples[1], c.Tuples[0]}}
	if Of(c) != Of(rot) {
		t.Error("rotated cycle changed the fingerprint")
	}
}

func TestOfDistinguishesDefects(t *testing.T) {
	base := Of(fig4Cycle(1))

	// Different deadlocking site: different defect.
	other := fig4Cycle(1)
	other.Tuples[0].Site = "A.f:99"
	if Of(other) == base {
		t.Error("different acquisition site collided")
	}

	// Different hold-and-wait context (extra stack frame): different
	// defect even though the deadlocking sites match.
	deeper := fig4Cycle(1)
	deeper.Tuples[0].Held = append(deeper.Tuples[0].Held,
		trace.HeldLock{Lock: "l9", Site: "A.f:7"})
	if Of(deeper) == base {
		t.Error("different acquisition stack collided")
	}

	// Different thread abstraction: different defect.
	reparent := fig4Cycle(1)
	reparent.Tuples[0].Thread = "main/other.1"
	if Of(reparent) == base {
		t.Error("different thread creation site collided")
	}
}

func TestStackOrderMatters(t *testing.T) {
	a := &detect.Cycle{Tuples: []*trace.Tuple{
		tuple(1, "main/a", "l3", "s:1", [2]string{"l1", "s:2"}, [2]string{"l2", "s:3"}),
		tuple(1, "main/b", "l1", "s:4", [2]string{"l3", "s:5"}),
	}}
	b := &detect.Cycle{Tuples: []*trace.Tuple{
		tuple(1, "main/a", "l3", "s:1", [2]string{"l2", "s:3"}, [2]string{"l1", "s:2"}),
		tuple(1, "main/b", "l1", "s:4", [2]string{"l3", "s:5"}),
	}}
	if Of(a) == Of(b) {
		t.Error("reordered acquisition stack collided")
	}
}

func TestEdgesSortedAndAbstracted(t *testing.T) {
	edges := Edges(fig4Cycle(3))
	if len(edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i-1].canon() > edges[i].canon() {
			t.Error("edges not in canonical order")
		}
	}
	for _, e := range edges {
		if e.Thread == "main/a" {
			if e.Site != "A.f:10" || len(e.Stack) != 1 || e.Stack[0] != "A.f:5" {
				t.Errorf("bad abstraction: %+v", e)
			}
		}
	}
}

func TestShort(t *testing.T) {
	fp := Of(fig4Cycle(1))
	if got := Short(fp); len(got) != 12 || fp[:12] != got {
		t.Errorf("Short(%q) = %q", fp, got)
	}
	if Short("abc") != "abc" {
		t.Error("Short should pass short strings through")
	}
}

// FuzzCanonical feeds arbitrary ordinal/rotation/identity perturbations
// and asserts the fingerprint never moves: renaming thread ordinals,
// rotating the cycle, and rewriting every per-run field (indices,
// occurrence counters, timestamps, positions, thread IDs) must hash
// identically, while changing an acquisition site must not.
func FuzzCanonical(f *testing.F) {
	f.Add(uint8(1), uint8(3), "A.f:10", "B.g:20")
	f.Add(uint8(0), uint8(255), "x", "y")
	f.Add(uint8(7), uint8(7), "site with spaces", "site\x1fwith|seps")
	f.Fuzz(func(t *testing.T, runA, runB uint8, siteA, siteB string) {
		mk := func(run int, sA, sB string) *detect.Cycle {
			return &detect.Cycle{Tuples: []*trace.Tuple{
				tuple(run, "main/a", "l2", sA, [2]string{"l1", sA + "'"}),
				tuple(run, "main/b", "l1", sB, [2]string{"l2", sB + "'"}),
			}}
		}
		base := mk(int(runA), siteA, siteB)
		perm := mk(int(runB), siteA, siteB)
		// Rotate the permuted cycle as well.
		perm.Tuples[0], perm.Tuples[1] = perm.Tuples[1], perm.Tuples[0]

		if Of(base) != Of(perm) {
			t.Fatalf("fingerprint not canonical:\nbase %s\nperm %s", Of(base), Of(perm))
		}
		if siteA != siteB {
			// Swapping which thread abstraction acquires at which site is a
			// different hold-and-wait shape and must not collide.
			swapped := mk(int(runA), siteB, siteA)
			if Of(base) == Of(swapped) {
				t.Fatalf("site permutation collided for %q/%q", siteA, siteB)
			}
		}
		moved := mk(int(runA), siteA+"!", siteB)
		if Of(base) == Of(moved) {
			t.Fatal("changed site collided")
		}
	})
}
