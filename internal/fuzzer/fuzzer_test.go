package fuzzer

import (
	"testing"

	"wolf/internal/detect"
	"wolf/internal/replay"
	"wolf/internal/sdg"
	"wolf/internal/trace"
	"wolf/internal/vclock"
	"wolf/sim"
)

func TestThreadAbs(t *testing.T) {
	cases := map[string]string{
		"main":            "main",
		"main/w.0":        "main/w",
		"main/w.1":        "main/w",
		"main/w.0/x.3":    "main/w/x",
		"main/pool.2/t.0": "main/pool/t",
	}
	for in, want := range cases {
		if got := ThreadAbs(in); got != want {
			t.Errorf("ThreadAbs(%q) = %q, want %q", in, got, want)
		}
	}
	if ThreadAbs("main/w.0") != ThreadAbs("main/w.1") {
		t.Error("twin threads must share an abstraction")
	}
}

func TestLockAbs(t *testing.T) {
	cases := map[string]string{
		"G":             "G",
		"mutex#SM1":     "mutex",
		"mutex#SM2":     "mutex",
		"mu@main.0":     "mu@main",
		"mu@main/w.0.1": "mu@main/w",
		"mu@main/w.1.0": "mu@main/w",
	}
	for in, want := range cases {
		if got := LockAbs(in); got != want {
			t.Errorf("LockAbs(%q) = %q, want %q", in, got, want)
		}
	}
	if LockAbs("mutex#SM1") != LockAbs("mutex#SM2") {
		t.Error("same-site lock instances must share an abstraction")
	}
}

// analyze records a sequential run and returns the trace and cycles.
func analyze(t *testing.T, f sim.Factory) (*trace.Trace, []*detect.Cycle) {
	t.Helper()
	prog, opts := f()
	vt := vclock.NewTracker()
	rec := trace.NewRecorder(vt)
	opts.Listeners = append(opts.Listeners, vt, rec)
	out := sim.Run(prog, sim.FirstEnabled{}, opts)
	if out.Kind == sim.ProgramError {
		t.Fatalf("outcome = %v", out)
	}
	tr := rec.Finish(0)
	return tr, detect.Cycles(tr, detect.Config{})
}

func cycleBySig(t *testing.T, cycles []*detect.Cycle, sig string) *detect.Cycle {
	t.Helper()
	for _, c := range cycles {
		if c.Signature() == sig {
			return c
		}
	}
	t.Fatalf("cycle %s not found (have %v)", sig, cycles)
	return nil
}

// simpleFactory: a deadlock between threads of distinct abstractions —
// DeadlockFuzzer's good case.
func simpleFactory() (sim.Program, sim.Options) {
	var a, b *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		a, b = w.NewLock("A"), w.NewLock("B")
	}}
	prog := func(th *sim.Thread) {
		h1 := th.Go("left", func(u *sim.Thread) {
			u.Yield("pre1")
			u.Lock(a, "L1")
			u.Lock(b, "L2")
			u.Unlock(b, "L3")
			u.Unlock(a, "L4")
		}, "m1")
		h2 := th.Go("right", func(u *sim.Thread) {
			u.Yield("pre2")
			u.Lock(b, "R1")
			u.Lock(a, "R2")
			u.Unlock(a, "R3")
			u.Unlock(b, "R4")
		}, "m2")
		th.Join(h1, "m3")
		th.Join(h2, "m4")
	}
	return prog, opts
}

// TestFuzzerReproducesSimpleDeadlock: with distinct abstractions the
// baseline works well — it must, or the comparison would be a strawman.
func TestFuzzerReproducesSimpleDeadlock(t *testing.T) {
	_, cycles := analyze(t, simpleFactory)
	c := cycleBySig(t, cycles, "L2+R2")
	hits := 0
	for seed := int64(0); seed < 40; seed++ {
		if Hit(Attempt(simpleFactory, c, seed, 0), c) {
			hits++
		}
	}
	// Probabilistic pausing caps the per-run hit rate below 1; the
	// baseline must still succeed on a clear majority of runs here.
	if hits < 24 {
		t.Fatalf("fuzzer hit %d/40, want >= 24 on its good case", hits)
	}
}

// figure9Factory models the paper's Figure 9: two threads created at the
// same site (same abstraction), operating on two same-site collection
// mutexes. t2 first executes the same addAll sequence as t1 (in mirrored
// order), then the removeAll that completes the real deadlock.
func figure9Factory() (sim.Program, sim.Options) {
	var sc1, sc2 *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		sc1 = w.NewLock("SC.mutex#1")
		sc2 = w.NewLock("SC.mutex#2")
	}}
	addAll := func(dst, src *sim.Lock) sim.Program {
		return func(u *sim.Thread) {
			u.Lock(dst, "1591")
			u.Lock(src, "1570") // toArray on the source
			u.Unlock(src, "1571")
			u.Unlock(dst, "1592")
		}
	}
	removeAll := func(dst, src *sim.Lock) sim.Program {
		return func(u *sim.Thread) {
			u.Lock(dst, "1594")
			u.Lock(src, "1567") // contains on the source
			u.Unlock(src, "1568")
			u.Unlock(dst, "1595")
		}
	}
	prog := func(th *sim.Thread) {
		t1 := th.Go("worker", func(u *sim.Thread) {
			addAll(sc1, sc2)(u)
		}, "spawn")
		t2 := th.Go("worker", func(u *sim.Thread) {
			addAll(sc2, sc1)(u) // the prelude that confuses DF
			removeAll(sc2, sc1)(u)
		}, "spawn")
		th.Join(t1, "j1")
		th.Join(t2, "j2")
	}
	return prog, opts
}

// TestFigure9: WOLF reliably reproduces the 1570+1567 deadlock that
// DeadlockFuzzer (abstraction collision: both workers match the paused
// component during the prelude) essentially never does — the paper's
// headline qualitative result.
func TestFigure9(t *testing.T) {
	tr, cycles := analyze(t, figure9Factory)
	target := cycleBySig(t, cycles, "1567+1570")

	g := sdg.Build(target, tr)
	if g.Cyclic() {
		t.Fatalf("target Gs cyclic:\n%v", g)
	}
	wolfHits, dfHits := 0, 0
	const runs = 40
	for seed := int64(0); seed < runs; seed++ {
		if replay.Hit(replay.Attempt(figure9Factory, g, target, seed, 0), target) {
			wolfHits++
		}
		if Hit(Attempt(figure9Factory, target, seed, 0), target) {
			dfHits++
		}
	}
	if wolfHits < runs*3/4 {
		t.Errorf("WOLF hit %d/%d, want >= %d", wolfHits, runs, runs*3/4)
	}
	if dfHits > runs/4 {
		t.Errorf("DF hit %d/%d, want <= %d (abstraction collision)", dfHits, runs, runs/4)
	}
	if dfHits >= wolfHits {
		t.Errorf("DF (%d) should underperform WOLF (%d) on Figure 9", dfHits, wolfHits)
	}
}

// figure2Factory: the paper's Figure 2 scenario (shared with other
// packages' tests).
func figure2Factory() (sim.Program, sim.Options) {
	var m1, m2 *sim.Lock
	opts := sim.Options{Setup: func(w *sim.World) {
		m1, m2 = w.NewLock("mutex#SM1"), w.NewLock("mutex#SM2")
	}}
	equals := func(mine, other *sim.Lock) sim.Program {
		return func(u *sim.Thread) {
			u.Lock(mine, "2024")
			u.Lock(other, "509")
			u.Unlock(other, "509u")
			u.Lock(other, "522")
			u.Unlock(other, "522u")
			u.Unlock(mine, "2025")
		}
	}
	prog := func(th *sim.Thread) {
		h1 := th.Go("t1", equals(m1, m2), "s1")
		h2 := th.Go("t2", equals(m2, m1), "s2")
		th.Join(h1, "j1")
		th.Join(h2, "j2")
	}
	return prog, opts
}

// TestFigure2Theta2Comparison: the mixed 509+522 deadlock — WOLF's
// trace-ordered replay beats DF's randomized pausing (the paper's
// Section 2 motivation).
func TestFigure2Theta2Comparison(t *testing.T) {
	tr, cycles := analyze(t, figure2Factory)
	target := cycleBySig(t, cycles, "509+522")
	g := sdg.Build(target, tr)
	wolfHits, dfHits := 0, 0
	const runs = 40
	for seed := int64(0); seed < runs; seed++ {
		if replay.Hit(replay.Attempt(figure2Factory, g, target, seed, 0), target) {
			wolfHits++
		}
		if Hit(Attempt(figure2Factory, target, seed, 0), target) {
			dfHits++
		}
	}
	if wolfHits <= dfHits {
		t.Errorf("WOLF (%d/%d) should beat DF (%d/%d) on θ2", wolfHits, runs, dfHits, runs)
	}
	if wolfHits < runs*3/4 {
		t.Errorf("WOLF hit %d/%d, want >= %d", wolfHits, runs, runs*3/4)
	}
}

// TestFuzzerTerminatesOnImpossibleCycle: targeting the infeasible θ4
// must not hang or hit.
func TestFuzzerTerminatesOnImpossibleCycle(t *testing.T) {
	_, cycles := analyze(t, figure2Factory)
	c := cycleBySig(t, cycles, "522+522")
	for seed := int64(0); seed < 10; seed++ {
		out := Attempt(figure2Factory, c, seed, 20000)
		if out.Kind == sim.StepLimit {
			t.Fatalf("seed %d: fuzzer hit step limit", seed)
		}
		if Hit(out, c) {
			t.Fatalf("seed %d: impossible deadlock reproduced", seed)
		}
	}
}

// TestReproduceAndHitRate: the driver APIs behave like replay's.
func TestReproduceAndHitRate(t *testing.T) {
	_, cycles := analyze(t, simpleFactory)
	c := cycleBySig(t, cycles, "L2+R2")
	res := Reproduce(simpleFactory, c, Config{Attempts: 10})
	if !res.Reproduced {
		t.Fatalf("not reproduced: %v", res.LastOutcome)
	}
	hr := HitRate(simpleFactory, c, 20, Config{})
	if hr < 0.8 {
		t.Fatalf("hit rate = %v, want >= 0.8", hr)
	}
}
