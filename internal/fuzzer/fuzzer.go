// Package fuzzer implements the DeadlockFuzzer baseline (Joshi et al.,
// PLDI 2009) that the paper compares WOLF against.
//
// DeadlockFuzzer reproduces a potential deadlock by randomized scheduling
// plus abstraction-based pausing: threads and locks are identified by
// *abstractions* derived from their creation sites (not by the concrete
// instances of the recorded run), and any thread whose abstraction
// matches a cycle component is paused right before the matching lock
// acquisition. When every component of the cycle has a paused thread,
// all of them are released at once, which drives the intended deadlock —
// if the right threads were paused.
//
// The two weaknesses the paper demonstrates are inherent here:
//
//   - abstraction collision: twin threads created at the same site are
//     indistinguishable, so the wrong one may be paused (Figure 9), and
//     "all threads with the required abstraction" get paused;
//   - no trace-derived ordering: without the synchronization dependency
//     graph, acquisitions that must precede the deadlocking context (for
//     example Figure 2's interim size() acquisition) are left to chance,
//     biasing reproduction toward deadlocks that occur earlier in the
//     code.
package fuzzer

import (
	"math/rand"

	"wolf/internal/detect"
	"wolf/internal/fingerprint"
	"wolf/internal/replay"
	"wolf/sim"
)

// DefaultAttempts matches the replay package's trial budget.
const DefaultAttempts = 5

// ThreadAbs returns the creation-site abstraction of a thread name:
// per-parent ordinals are stripped, so "main/w.0" and "main/w.1" share
// the abstraction "main/w". This models DeadlockFuzzer's object
// abstractions, under which threads created at the same program point
// are indistinguishable. The abstraction itself lives in the
// fingerprint package, where the defect corpus reuses it for cross-run
// deadlock identity.
func ThreadAbs(name string) string { return fingerprint.ThreadAbs(name) }

// LockAbs returns the allocation-site abstraction of a lock name.
// Convention: an explicit "#instance" suffix marks same-site instances
// ("mutex#SM1" and "mutex#SM2" share abstraction "mutex"), and locks
// allocated by threads ("base@thread.k") collapse their allocation
// ordinal and the allocating thread's ordinals.
func LockAbs(name string) string { return fingerprint.LockAbs(name) }

// component is one node of the target cycle, abstracted.
type component struct {
	// thread is the thread abstraction that must block here.
	thread string
	// site is the source location of the deadlocking acquisition.
	site string
	// want is the abstraction of the lock being acquired.
	want string
	// held are the abstractions of the locks the thread must hold.
	held []string
}

// matches reports whether thread t, about to acquire l at site, is "in
// position" for the component.
func (c *component) matches(t *sim.Thread, l *sim.Lock, site string) bool {
	if ThreadAbs(t.Name()) != c.thread || site != c.site || LockAbs(l.Name()) != c.want {
		return false
	}
	for _, h := range c.held {
		found := false
		for _, hl := range t.Held() {
			if LockAbs(hl.Name()) == h {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// PauseProbability is the chance that an in-position thread is actually
// paused at a matching acquisition. DeadlockFuzzer is a randomized
// analysis whose pauses depend on scheduling jitter; a deterministic
// always-pause policy would force every run into the earliest deadlock
// (the bias the paper describes) and never reach later ones at all.
const PauseProbability = 0.5

// strategy implements the DeadlockFuzzer scheduler for one run.
type strategy struct {
	comps    []*component
	rng      *rand.Rand
	paused   map[*sim.Thread]int // thread → component index
	filled   []int               // per-component paused-thread count
	released bool                // the all-filled "go" signal fired
	// decided records the coin flip for a thread's current pending
	// operation (keyed by the operation's sequence number) so the
	// pause decision is made once per acquisition, not per Pick call.
	decided map[*sim.Thread]pauseDecision
	// thrashes counts forced releases when everything was paused.
	thrashes int
}

// pauseDecision caches one coin flip.
type pauseDecision struct {
	seq   int
	pause bool
}

// Pick pauses in-position threads until every component is covered, then
// releases the pack into the deadlock; otherwise it schedules randomly.
func (s *strategy) Pick(_ *sim.World, enabled []*sim.Thread) *sim.Thread {
	var candidates []*sim.Thread
	for _, t := range enabled {
		if _, isPaused := s.paused[t]; isPaused {
			if s.released {
				delete(s.paused, t)
				candidates = append(candidates, t)
			}
			continue
		}
		if !s.released {
			op := t.Pending()
			isAcq := op.Kind == sim.OpLock || op.Kind == sim.OpWaitResume
			if isAcq && !t.Holds(op.Lock) {
				if ci := s.match(t, op); ci >= 0 && s.shouldPause(t) {
					// Pause this thread — and keep pausing every other
					// matching thread, as DeadlockFuzzer does.
					s.paused[t] = ci
					s.filled[ci]++
					s.checkAllFilled()
					continue
				}
			}
		}
		candidates = append(candidates, t)
	}
	if len(candidates) == 0 {
		// Thrash avoidance: every runnable thread is paused; release a
		// random one and unfill its component.
		s.thrashes++
		victims := make([]*sim.Thread, 0, len(s.paused))
		for t := range s.paused {
			for _, e := range enabled {
				if e == t {
					victims = append(victims, t)
					break
				}
			}
		}
		if len(victims) == 0 {
			// Paused threads are all sim-blocked; nothing to do but run
			// an arbitrary enabled thread (there are none — cannot
			// happen, Pick is never called with empty enabled), so fall
			// back to releasing the pack.
			s.released = true
			return enabled[s.rng.Intn(len(enabled))]
		}
		t := victims[s.rng.Intn(len(victims))]
		s.filled[s.paused[t]]--
		delete(s.paused, t)
		return t
	}
	return candidates[s.rng.Intn(len(candidates))]
}

// shouldPause flips (once per pending acquisition) whether scheduling
// jitter lets the fuzzer pause the thread in time.
func (s *strategy) shouldPause(t *sim.Thread) bool {
	if d, ok := s.decided[t]; ok && d.seq == t.Seq()+1 {
		return d.pause
	}
	d := pauseDecision{seq: t.Seq() + 1, pause: s.rng.Float64() < PauseProbability}
	s.decided[t] = d
	return d.pause
}

// match returns the index of an unreleased component t is in position
// for, or -1.
func (s *strategy) match(t *sim.Thread, op sim.Op) int {
	for i, c := range s.comps {
		if c.matches(t, op.Lock, op.Site) {
			return i
		}
	}
	return -1
}

// checkAllFilled fires the release signal once every component has at
// least one paused thread.
func (s *strategy) checkAllFilled() {
	for _, n := range s.filled {
		if n == 0 {
			return
		}
	}
	s.released = true
}

// Attempt performs one DeadlockFuzzer-style re-execution targeting cycle.
func Attempt(f sim.Factory, cycle *detect.Cycle, seed int64, maxSteps int) *sim.Outcome {
	prog, opts := f()
	st := &strategy{
		rng:     rand.New(rand.NewSource(seed)),
		paused:  make(map[*sim.Thread]int),
		filled:  make([]int, len(cycle.Tuples)),
		decided: make(map[*sim.Thread]pauseDecision),
	}
	for _, tp := range cycle.Tuples {
		c := &component{
			thread: ThreadAbs(tp.Thread),
			site:   tp.Site,
			want:   LockAbs(tp.Lock),
		}
		for _, h := range tp.Held {
			c.held = append(c.held, LockAbs(h.Lock))
		}
		st.comps = append(st.comps, c)
	}
	if maxSteps > 0 {
		opts.MaxSteps = maxSteps
	}
	return sim.Run(prog, st, opts)
}

// Hit applies the same exact-location criterion as the WOLF Replayer.
func Hit(out *sim.Outcome, cycle *detect.Cycle) bool { return replay.Hit(out, cycle) }

// Config controls reproduction.
type Config struct {
	// Attempts is the trial budget; DefaultAttempts when zero.
	Attempts int
	// BaseSeed seeds attempt i with BaseSeed + i.
	BaseSeed int64
	// MaxSteps bounds each run.
	MaxSteps int
}

// Reproduce runs up to cfg.Attempts executions, stopping at the first hit.
func Reproduce(f sim.Factory, cycle *detect.Cycle, cfg Config) replay.Result {
	attempts := cfg.Attempts
	if attempts <= 0 {
		attempts = DefaultAttempts
	}
	var res replay.Result
	for i := 0; i < attempts; i++ {
		out := Attempt(f, cycle, cfg.BaseSeed+int64(i), cfg.MaxSteps)
		res.Attempts++
		res.LastOutcome = out
		if Hit(out, cycle) {
			res.Reproduced = true
			res.Hits++
			return res
		}
	}
	return res
}

// HitRate runs exactly runs attempts and returns the hit fraction
// (Figure 8's DF series).
func HitRate(f sim.Factory, cycle *detect.Cycle, runs int, cfg Config) float64 {
	if runs <= 0 {
		return 0
	}
	hits := 0
	for i := 0; i < runs; i++ {
		if Hit(Attempt(f, cycle, cfg.BaseSeed+int64(i), cfg.MaxSteps), cycle) {
			hits++
		}
	}
	return float64(hits) / float64(runs)
}
