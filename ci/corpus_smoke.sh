#!/usr/bin/env bash
# corpus_smoke.sh — end-to-end corpus round trip against real binaries:
# record a trace, start wolfd with a data dir, upload the trace twice
# (dedup → one blob, two occurrences), SIGTERM-restart wolfd, and check
# the defect record survived with its occurrence count intact.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
wolfd_pid=""
cleanup() {
  [ -n "$wolfd_pid" ] && kill "$wolfd_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

addr="127.0.0.1:8177"
base="http://$addr"
datadir="$workdir/corpus"

echo "== build"
go build -o "$workdir/wolf" ./cmd/wolf
go build -o "$workdir/wolfd" ./cmd/wolfd
go build -o "$workdir/wolfctl" ./cmd/wolfctl
"$workdir/wolfctl" -version

echo "== record a Figure4 detection trace"
"$workdir/wolf" -workload Figure4 -record "$workdir/fig4.wtrc"

start_wolfd() {
  "$workdir/wolfd" -addr "$addr" -data-dir "$datadir" -log-level warn &
  wolfd_pid=$!
  for _ in $(seq 1 50); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "wolfd did not come up" >&2
  exit 1
}

echo "== start wolfd -data-dir"
start_wolfd

echo "== upload the trace twice"
"$workdir/wolfctl" -addr "$base" upload "$workdir/fig4.wtrc" -wait
"$workdir/wolfctl" -addr "$base" upload "$workdir/fig4.wtrc" -wait

echo "== one deduped blob, one defect record with occurrences=2"
blobs="$("$workdir/wolfctl" -addr "$base" trace | wc -l)"
[ "$blobs" -eq 1 ] || { echo "expected 1 stored blob, got $blobs" >&2; exit 1; }
"$workdir/wolfctl" -addr "$base" defects -json | tee "$workdir/defects-before.json"
grep -q '"occurrences": 2' "$workdir/defects-before.json" \
  || { echo "expected occurrences=2 before restart" >&2; exit 1; }

echo "== SIGTERM restart"
kill -TERM "$wolfd_pid"
wait "$wolfd_pid" || true
wolfd_pid=""
start_wolfd

echo "== corpus survived the restart"
blobs="$("$workdir/wolfctl" -addr "$base" trace | wc -l)"
[ "$blobs" -eq 1 ] || { echo "expected 1 stored blob after restart, got $blobs" >&2; exit 1; }
"$workdir/wolfctl" -addr "$base" defects -json | tee "$workdir/defects-after.json"
grep -q '"occurrences": 2' "$workdir/defects-after.json" \
  || { echo "defect record lost or occurrence count changed across restart" >&2; exit 1; }
jobs="$("$workdir/wolfctl" -addr "$base" jobs -state done | wc -l)"
[ "$jobs" -eq 2 ] || { echo "expected 2 done jobs after restart, got $jobs" >&2; exit 1; }

echo "== corpus smoke OK"
