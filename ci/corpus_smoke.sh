#!/usr/bin/env bash
# corpus_smoke.sh — end-to-end corpus round trip against real binaries:
# record a trace, start wolfd with a data dir, upload the trace twice
# (dedup → one blob, two occurrences), SIGTERM-restart wolfd, and check
# the defect record survived with its occurrence count intact.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
wolfd_pid=""
cleanup() {
  if [ -n "$wolfd_pid" ]; then
    kill "$wolfd_pid" 2>/dev/null || true
    wait "$wolfd_pid" 2>/dev/null || true # let the shutdown snapshot land
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

addr="127.0.0.1:8177"
base="http://$addr"
datadir="$workdir/corpus"

echo "== build"
go build -o "$workdir/wolf" ./cmd/wolf
go build -o "$workdir/wolfd" ./cmd/wolfd
go build -o "$workdir/wolfctl" ./cmd/wolfctl
"$workdir/wolfctl" -version

echo "== record a Figure4 detection trace"
"$workdir/wolf" -workload Figure4 -record "$workdir/fig4.wtrc"

start_wolfd() {
  "$workdir/wolfd" -addr "$addr" -data-dir "$datadir" -log-level warn &
  wolfd_pid=$!
  for _ in $(seq 1 50); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "wolfd did not come up" >&2
  exit 1
}

echo "== start wolfd -data-dir"
start_wolfd

echo "== upload the trace twice"
"$workdir/wolfctl" -addr "$base" upload "$workdir/fig4.wtrc" -wait
"$workdir/wolfctl" -addr "$base" upload "$workdir/fig4.wtrc" -wait

echo "== one deduped blob, one defect record with occurrences=2"
blobs="$("$workdir/wolfctl" -addr "$base" trace | wc -l)"
[ "$blobs" -eq 1 ] || { echo "expected 1 stored blob, got $blobs" >&2; exit 1; }
"$workdir/wolfctl" -addr "$base" defects -json | tee "$workdir/defects-before.json"
grep -q '"occurrences": 2' "$workdir/defects-before.json" \
  || { echo "expected occurrences=2 before restart" >&2; exit 1; }

echo "== SIGTERM restart"
kill -TERM "$wolfd_pid"
wait "$wolfd_pid" || true
wolfd_pid=""
start_wolfd

echo "== corpus survived the restart"
blobs="$("$workdir/wolfctl" -addr "$base" trace | wc -l)"
[ "$blobs" -eq 1 ] || { echo "expected 1 stored blob after restart, got $blobs" >&2; exit 1; }
"$workdir/wolfctl" -addr "$base" defects -json | tee "$workdir/defects-after.json"
grep -q '"occurrences": 2' "$workdir/defects-after.json" \
  || { echo "defect record lost or occurrence count changed across restart" >&2; exit 1; }
jobs="$("$workdir/wolfctl" -addr "$base" jobs -state done | wc -l)"
[ "$jobs" -eq 2 ] || { echo "expected 2 done jobs after restart, got $jobs" >&2; exit 1; }

echo "== flatten the corpus to the pre-sharding layout"
# A -data-dir written before the sharded layout has every blob directly
# under traces/ and defects/ and no index snapshot. Rewrite the corpus
# into that shape and prove the server still serves it unchanged.
kill -TERM "$wolfd_pid"
wait "$wolfd_pid" || true
wolfd_pid=""
hash="$(basename "$(find "$datadir/traces" -name '*.wtrc' | head -1)" .wtrc)"
find "$datadir/traces" -mindepth 2 -type f -exec mv {} "$datadir/traces/" \;
find "$datadir/defects" -mindepth 2 -type f -exec mv {} "$datadir/defects/" \;
find "$datadir/traces" "$datadir/defects" -mindepth 1 -type d -delete
rm -f "$datadir/index.bin" "$datadir/index.dirty"
[ -f "$datadir/traces/$hash.wtrc" ] || { echo "flatten failed" >&2; exit 1; }
start_wolfd

echo "== flat corpus serves unchanged results"
blobs="$("$workdir/wolfctl" -addr "$base" trace | wc -l)"
[ "$blobs" -eq 1 ] || { echo "expected 1 stored blob from flat layout, got $blobs" >&2; exit 1; }
"$workdir/wolfctl" -addr "$base" defects -json | tee "$workdir/defects-flat.json"
grep -q '"occurrences": 2' "$workdir/defects-flat.json" \
  || { echo "defect record lost migrating from the flat layout" >&2; exit 1; }

echo "== reading the blob migrates it into its shard"
curl -fsS "$base/v1/traces/$hash" -o "$workdir/served.wtrc"
cmp -s "$workdir/served.wtrc" "$datadir/traces/${hash:0:2}/$hash.wtrc" \
  || { echo "blob not at its sharded path (or content changed) after read" >&2; exit 1; }
[ ! -f "$datadir/traces/$hash.wtrc" ] \
  || { echo "flat blob still present after lazy migration" >&2; exit 1; }

echo "== corpus smoke OK"
