#!/usr/bin/env bash
# wolfsync_smoke.sh — end-to-end check of runtime instrumentation: the
# global-lock example (a real Go program on real wolfsync mutexes)
# deadlocks for real and live-streams its wedged trace into wolfd; the
# sim twin of the same scenario streams its recording too; both must
# land on the same defect fingerprint (one record, occurrences=2),
# because thread names, lock names and call sites are modeled
# identically. The fixed variant must add no defect records.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
wolfd_pid=""
cleanup() {
  [ -n "$wolfd_pid" ] && kill "$wolfd_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

addr="127.0.0.1:8179"
base="http://$addr"
datadir="$workdir/corpus"

echo "== build"
go build -o "$workdir/wolf" ./cmd/wolf
go build -o "$workdir/wolfd" ./cmd/wolfd
go build -o "$workdir/wolfctl" ./cmd/wolfctl
go build -o "$workdir/globallock" ./examples/globallock

echo "== start wolfd -data-dir"
"$workdir/wolfd" -addr "$addr" -data-dir "$datadir" -log-level warn &
wolfd_pid=$!
for _ in $(seq 1 50); do
  if curl -fsS "$base/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS "$base/healthz" >/dev/null || { echo "wolfd did not come up" >&2; exit 1; }

echo "== sim driver: record GlobalLock and stream it (source=sim)"
"$workdir/wolf" -workload GlobalLock -record "$workdir/globallock.wtrc"
"$workdir/wolfctl" -addr "$base" stream "$workdir/globallock.wtrc" -wait

echo "== real driver: the instrumented example live-streams its own run"
# The raw variant usually wedges for real; exit 2 means "deadlocked, trace
# shipped", which is the interesting outcome, not a failure. The quiesce
# shipper delivers the wedged snapshot long before the timeout fires.
set +e
WOLFSYNC_URL="$base" "$workdir/globallock" -variant deadlock -timeout 4s
rc=$?
set -e
case "$rc" in
  0) echo "note: raw variant completed without wedging this run" ;;
  2) echo "raw variant wedged as expected" ;;
  *) echo "globallock exited $rc" >&2; exit 1 ;;
esac

echo "== both drivers converge on one defect record with occurrences=2"
found=""
for _ in $(seq 1 100); do
  "$workdir/wolfctl" -addr "$base" defects -json > "$workdir/defects.json" 2>/dev/null || true
  if grep -q '"occurrences": 2' "$workdir/defects.json"; then found=1; break; fi
  sleep 0.2
done
[ -n "$found" ] || { cat "$workdir/defects.json" >&2; echo "sim and wolfsync traces did not converge on one defect" >&2; exit 1; }
records="$(grep -c '"fingerprint"' "$workdir/defects.json")"
[ "$records" -eq 1 ] || { echo "expected 1 defect record, got $records — fingerprints diverged" >&2; exit 1; }

echo "== fixed variant streams clean: no new defect records"
WOLFSYNC_URL="$base" "$workdir/globallock" -variant fixed -timeout 30s
sleep 1
"$workdir/wolfctl" -addr "$base" defects -json > "$workdir/defects_after.json"
after="$(grep -c '"fingerprint"' "$workdir/defects_after.json")"
[ "$after" -eq "$records" ] || { echo "fixed variant grew the corpus: $records -> $after" >&2; exit 1; }

echo "== streams are labeled by source in /metrics"
curl -fsS "$base/metrics" > "$workdir/metrics.out"
grep -q 'wolfd_streams_opened_total{source="sim"} 1' "$workdir/metrics.out" \
  || { echo 'missing wolfd_streams_opened_total{source="sim"}' >&2; exit 1; }
grep -Eq 'wolfd_streams_opened_total\{source="wolfsync"\} [1-9]' "$workdir/metrics.out" \
  || { echo 'missing wolfd_streams_opened_total{source="wolfsync"}' >&2; exit 1; }

echo "== wolfsync smoke OK"
