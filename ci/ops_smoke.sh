#!/usr/bin/env bash
# ops_smoke.sh — end-to-end check of the causal-tracing and ops surface:
# start wolfd, stream a Figure4 recording while polling /v1/status and
# tailing /v1/debug/events, and assert that a client-supplied W3C
# traceparent round-trips verbatim into the job record, the event log,
# and the exported timeline.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
wolfd_pid=""
tail_pid=""
cleanup() {
  [ -n "$tail_pid" ] && kill "$tail_pid" 2>/dev/null || true
  [ -n "$wolfd_pid" ] && kill "$wolfd_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

addr="127.0.0.1:8179"
base="http://$addr"
datadir="$workdir/corpus"

echo "== build"
go build -o "$workdir/wolf" ./cmd/wolf
go build -o "$workdir/wolfd" ./cmd/wolfd
go build -o "$workdir/wolfctl" ./cmd/wolfctl

echo "== record a Figure4 detection trace"
"$workdir/wolf" -workload Figure4 -record "$workdir/fig4.wtrc"

echo "== start wolfd -data-dir with a small flight recorder"
"$workdir/wolfd" -addr "$addr" -data-dir "$datadir" -flight-recorder 256 -log-level warn &
wolfd_pid=$!
for _ in $(seq 1 50); do
  if curl -fsS "$base/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS "$base/healthz" >/dev/null || { echo "wolfd did not come up" >&2; exit 1; }

echo "== healthz carries the ops fields"
curl -fsS "$base/healthz" | tee "$workdir/healthz.json"; echo
grep -q '"draining": *false' "$workdir/healthz.json" \
  || { echo "healthz missing draining flag" >&2; exit 1; }
grep -q '"streams_open"' "$workdir/healthz.json" \
  || { echo "healthz missing streams_open" >&2; exit 1; }
grep -q '"version"' "$workdir/healthz.json" \
  || { echo "healthz missing build version" >&2; exit 1; }

echo "== open a live SSE tail of /v1/debug/events"
curl -fsSN "$base/v1/debug/events?follow=1" > "$workdir/tail.sse" &
tail_pid=$!

echo "== stream the trace while polling /v1/status"
"$workdir/wolfctl" -addr "$base" stream "$workdir/fig4.wtrc" -chunk 1024 -wait
"$workdir/wolfctl" -addr "$base" status | tee "$workdir/status.out"
grep -q '^wolfd ok' "$workdir/status.out" \
  || { echo "wolfctl status did not report ok" >&2; exit 1; }
grep -q '^corpus' "$workdir/status.out" \
  || { echo "wolfctl status missing corpus line" >&2; exit 1; }

echo "== upload with a client-supplied traceparent"
trace_id="4bf92f3577b34da6a3ce929d0e0e4736"
"$workdir/wolfctl" -addr "$base" upload "$workdir/fig4.wtrc" -wait \
  -traceparent "00-$trace_id-00f067aa0ba902b7-01" | tee "$workdir/upload.out"
job_id="$(awk '{print $1; exit}' "$workdir/upload.out")"
[ -n "$job_id" ] || { echo "no job id from upload" >&2; exit 1; }

echo "== trace ID round-trips into the job record"
curl -fsS "$base/v1/jobs/$job_id" | tee "$workdir/job.json"; echo
grep -Eq "\"trace\": *\"$trace_id\"" "$workdir/job.json" \
  || { echo "job record missing the client trace ID" >&2; exit 1; }

echo "== ...into the flight-recorder events"
"$workdir/wolfctl" -addr "$base" tail -trace "$trace_id" | tee "$workdir/events.out"
for kind in job.queued job.started job.done; do
  grep -q "$kind" "$workdir/events.out" \
    || { echo "no $kind event for trace $trace_id" >&2; exit 1; }
done

echo "== ...and into the exported timeline"
curl -fsS "$base/v1/jobs/$job_id/timeline" > "$workdir/timeline.json"
grep -q "$trace_id" "$workdir/timeline.json" \
  || { echo "timeline export missing the trace ID" >&2; exit 1; }

echo "== /v1/status reflects the finished work"
curl -fsS "$base/v1/status" | tee "$workdir/status.json"; echo
grep -Eq '"status": *"ok"' "$workdir/status.json" \
  || { echo "status not ok" >&2; exit 1; }
grep -Eq '"analysis": *\{'  "$workdir/status.json" \
  || { echo "status missing analysis latency quantiles" >&2; exit 1; }

echo "== the SSE tail saw the stream and the upload live"
sleep 0.5
kill "$tail_pid" 2>/dev/null || true
wait "$tail_pid" 2>/dev/null || true
tail_pid=""
grep -q '^id: ' "$workdir/tail.sse" \
  || { echo "SSE tail produced no frames" >&2; exit 1; }
grep -q 'stream.open' "$workdir/tail.sse" \
  || { echo "SSE tail missing stream.open event" >&2; exit 1; }
grep -q "$trace_id" "$workdir/tail.sse" \
  || { echo "SSE tail never carried the client trace ID" >&2; exit 1; }

echo "== event metrics exported"
curl -fsS "$base/metrics" > "$workdir/metrics.out"
grep -q 'wolfd_events_total{kind="job.done"}' "$workdir/metrics.out" \
  || { echo "wolfd_events_total missing from /metrics" >&2; exit 1; }

echo "== ops smoke OK"
