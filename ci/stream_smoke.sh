#!/usr/bin/env bash
# stream_smoke.sh — end-to-end check that the streaming ingestion path
# converges with batch upload: record a trace, upload it whole, then
# stream the same file in 1 KiB chunks; both must land on the same
# defect fingerprint, so the corpus holds one record with occurrences=2.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
wolfd_pid=""
cleanup() {
  [ -n "$wolfd_pid" ] && kill "$wolfd_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

addr="127.0.0.1:8178"
base="http://$addr"
datadir="$workdir/corpus"

echo "== build"
go build -o "$workdir/wolf" ./cmd/wolf
go build -o "$workdir/wolfd" ./cmd/wolfd
go build -o "$workdir/wolfctl" ./cmd/wolfctl

echo "== record a Figure4 detection trace"
"$workdir/wolf" -workload Figure4 -record "$workdir/fig4.wtrc"

echo "== start wolfd -data-dir"
"$workdir/wolfd" -addr "$addr" -data-dir "$datadir" -log-level warn &
wolfd_pid=$!
for _ in $(seq 1 50); do
  if curl -fsS "$base/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fsS "$base/healthz" >/dev/null || { echo "wolfd did not come up" >&2; exit 1; }

echo "== batch upload"
"$workdir/wolfctl" -addr "$base" upload "$workdir/fig4.wtrc" -wait

echo "== stream the same trace in 1 KiB chunks"
"$workdir/wolfctl" -addr "$base" stream "$workdir/fig4.wtrc" -chunk 1024 -wait \
  | tee "$workdir/stream.out"
grep -q '^candidate' "$workdir/stream.out" \
  || { echo "no live candidates printed while streaming" >&2; exit 1; }

echo "== both paths converge on one defect record with occurrences=2"
"$workdir/wolfctl" -addr "$base" defects -json | tee "$workdir/defects.json"
records="$(grep -c '"fingerprint"' "$workdir/defects.json")"
[ "$records" -eq 1 ] || { echo "expected 1 defect record, got $records — stream and batch fingerprints diverged" >&2; exit 1; }
grep -q '"occurrences": 2' "$workdir/defects.json" \
  || { echo "expected occurrences=2 (batch + stream)" >&2; exit 1; }

echo "== stream metrics exported"
curl -fsS "$base/metrics" | tee "$workdir/metrics.out" | grep -E 'wolfd_stream' >/dev/null \
  || { echo "stream metrics missing from /metrics" >&2; exit 1; }
grep -q '^wolfd_stream_events_total [1-9]' "$workdir/metrics.out" \
  || { echo "wolfd_stream_events_total did not count streamed events" >&2; exit 1; }

echo "== stream smoke OK"
