#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end drill of the coordinator/analyzer fleet:
# start a coordinator and two analyzers, freeze one analyzer mid-job
# (SIGSTOP so the freeze is verifiable, then SIGKILL), and assert the
# coordinator declares the node lost, reassigns its leased job to the
# survivor, and lands the exact defect corpus a single-process wolfd
# produces from the same inputs.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
coord_pid=""
a_pid=""
b_pid=""
single_pid=""
cleanup() {
  for pid in "$a_pid" "$b_pid" "$coord_pid" "$single_pid"; do
    [ -n "$pid" ] && kill -CONT "$pid" 2>/dev/null || true
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

addr="127.0.0.1:8187"
base="http://$addr"
datadir="$workdir/corpus"

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "$1 did not come up" >&2
  return 1
}

job_field() { # job_field <base> <job> <field>
  curl -fsS "$2/v1/jobs/$1" 2>/dev/null \
    | sed -n "s/.*\"$3\": *\"\([^\"]*\)\".*/\1/p" | head -1
}

echo "== build"
go build -o "$workdir/wolf" ./cmd/wolf
go build -o "$workdir/wolfd" ./cmd/wolfd
go build -o "$workdir/wolfctl" ./cmd/wolfctl

echo "== record detection traces"
"$workdir/wolf" -workload Figure4 -record "$workdir/fig4.wtrc"
# Jigsaw is the freeze target: 2000+ tuples keep the analyzer busy for
# tens of milliseconds, wide enough to SIGSTOP it mid-lease.
"$workdir/wolf" -workload Jigsaw -record "$workdir/jig.wtrc"

echo "== start the coordinator (short lease/heartbeat so failures bite fast)"
"$workdir/wolfd" -addr "$addr" -role coordinator -data-dir "$datadir" \
  -lease-ttl 2s -heartbeat 500ms -heartbeat-timeout 3s -log-level warn &
coord_pid=$!
wait_healthy "$base"
curl -fsS "$base/healthz" | grep -q '"role": *"coordinator"' \
  || { echo "coordinator healthz missing role" >&2; exit 1; }

echo "== start analyzer alpha"
"$workdir/wolfd" -addr 127.0.0.1:8188 -role analyzer -coordinator "$base" \
  -node-name alpha -poll 50ms -log-level warn &
a_pid=$!
wait_healthy "http://127.0.0.1:8188"

echo "== warm up: alpha completes a workload job end to end"
curl -fsS -X POST "$base/v1/workloads/Philosophers" >/dev/null
"$workdir/wolfctl" -addr "$base" upload "$workdir/fig4.wtrc" -wait \
  || { echo "warmup upload failed" >&2; exit 1; }

echo "== freeze alpha while it holds a lease (SIGSTOP sampling, retried)"
frozen=""
for attempt in $(seq 1 25); do
  job_id="$(curl -fsS -X POST --data-binary "@$workdir/jig.wtrc" "$base/v1/traces" \
    | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')"
  [ -n "$job_id" ] || { echo "upload produced no job id" >&2; exit 1; }
  # Sample alpha rapidly: stop it, read the job state, and either keep
  # it frozen (caught mid-lease) or thaw it and sample again. Stopping
  # before the read guarantees a "running" observation means alpha is
  # frozen holding the lease and cannot complete.
  for _ in $(seq 1 400); do
    kill -STOP "$a_pid"
    state="$(job_field "$job_id" "$base" state)"
    if [ "$state" = "running" ]; then
      # Rule out a completion already in flight when the stop landed.
      sleep 0.3
      state="$(job_field "$job_id" "$base" state)"
      if [ "$state" = "running" ]; then
        frozen="yes"
        break
      fi
    fi
    kill -CONT "$a_pid"
    if [ "$state" = "done" ] || [ "$state" = "failed" ]; then break; fi
    sleep 0.005
  done
  if [ -n "$frozen" ]; then
    echo "   attempt $attempt: alpha frozen holding job $job_id"
    break
  fi
  # Alpha won the race and finished; drain the job and try again.
  for _ in $(seq 1 200); do
    state="$(job_field "$job_id" "$base" state)"
    if [ "$state" = "done" ] || [ "$state" = "failed" ]; then break; fi
    sleep 0.01
  done
done
[ -n "$frozen" ] || { echo "could not freeze alpha mid-job in 25 attempts" >&2; exit 1; }

echo "== start analyzer beta; the lease must expire and the job move over"
"$workdir/wolfd" -addr 127.0.0.1:8189 -role analyzer -coordinator "$base" \
  -node-name beta -poll 50ms -log-level warn &
b_pid=$!
wait_healthy "http://127.0.0.1:8189"

for _ in $(seq 1 300); do
  state="$(job_field "$job_id" "$base" state)"
  [ "$state" = "done" ] && break
  sleep 0.1
done
[ "$state" = "done" ] || { echo "job $job_id never completed after reassignment (state=$state)" >&2; exit 1; }

echo "== the job record shows the redelivery"
curl -fsS "$base/v1/jobs/$job_id" | tee "$workdir/job.json"; echo
grep -q '"attempts": *2' "$workdir/job.json" \
  || { echo "reassigned job does not show 2 attempts" >&2; exit 1; }

echo "== SIGKILL the frozen analyzer; the coordinator declares it lost"
kill -KILL "$a_pid"; wait "$a_pid" 2>/dev/null || true; a_pid=""
for _ in $(seq 1 100); do
  if "$workdir/wolfctl" -addr "$base" nodes | grep -q 'lost'; then break; fi
  sleep 0.1
done
"$workdir/wolfctl" -addr "$base" nodes | tee "$workdir/nodes.out"
grep -q 'alpha	lost' "$workdir/nodes.out" \
  || { echo "alpha not reported lost" >&2; exit 1; }
grep -q 'beta	alive' "$workdir/nodes.out" \
  || { echo "beta not reported alive" >&2; exit 1; }

echo "== beta keeps working after the failure"
"$workdir/wolfctl" -addr "$base" upload "$workdir/fig4.wtrc" -wait \
  || { echo "post-failure upload failed" >&2; exit 1; }

echo "== fleet metrics and events recorded the story"
curl -fsS "$base/metrics" > "$workdir/metrics.out"
for family in wolfd_nodes_registered_total wolfd_nodes_lost_total wolfd_jobs_reassigned_total; do
  grep -q "^$family" "$workdir/metrics.out" \
    || { echo "$family missing from /metrics" >&2; exit 1; }
done
awk '/^wolfd_jobs_reassigned_total/ {exit ($2 >= 1 ? 0 : 1)}' "$workdir/metrics.out" \
  || { echo "no reassignment counted" >&2; exit 1; }
"$workdir/wolfctl" -addr "$base" tail -kind node.lost | grep -q node.lost \
  || { echo "no node.lost event" >&2; exit 1; }
"$workdir/wolfctl" -addr "$base" tail -kind job.reassigned | grep -q job.reassigned \
  || { echo "no job.reassigned event" >&2; exit 1; }

echo "== corpus correctness: fleet defects == single-process defects"
"$workdir/wolfctl" -addr "$base" defects | tail -n +2 | cut -f1,6 | sort -u > "$workdir/fleet.defects"
[ -s "$workdir/fleet.defects" ] || { echo "fleet corpus is empty" >&2; exit 1; }

single_addr="127.0.0.1:8190"
"$workdir/wolfd" -addr "$single_addr" -data-dir "$workdir/single" -log-level warn &
single_pid=$!
wait_healthy "http://$single_addr"
curl -fsS -X POST "http://$single_addr/v1/workloads/Philosophers" >/dev/null
"$workdir/wolfctl" -addr "http://$single_addr" upload "$workdir/fig4.wtrc" -wait >/dev/null
"$workdir/wolfctl" -addr "http://$single_addr" upload "$workdir/jig.wtrc" -wait >/dev/null
# Drain the workload job too before comparing.
for _ in $(seq 1 300); do
  "$workdir/wolfctl" -addr "http://$single_addr" jobs -state queued | grep -q . || \
  "$workdir/wolfctl" -addr "http://$single_addr" jobs -state running | grep -q . || break
  sleep 0.1
done
"$workdir/wolfctl" -addr "http://$single_addr" defects | tail -n +2 | cut -f1,6 | sort -u > "$workdir/single.defects"

diff -u "$workdir/single.defects" "$workdir/fleet.defects" \
  || { echo "fleet corpus diverges from the single-process corpus" >&2; exit 1; }

echo "== fleet smoke OK"
